package stm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryConditionSync: a consumer retries until a producer sets a flag.
func TestRetryConditionSync(t *testing.T) {
	for _, spin := range []bool{false, true} {
		name := "blocking"
		if spin {
			name = "spin"
		}
		t.Run(name, func(t *testing.T) {
			rt := New(Config{SpinRetry: spin})
			flag := NewVar(false)
			box := NewVar(0)
			got := make(chan int, 1)
			go func() {
				_ = rt.Atomic(func(tx *Tx) error {
					if !flag.Get(tx) {
						tx.Retry()
					}
					got <- box.Get(tx)
					return nil
				})
			}()
			// Give the consumer a chance to block.
			time.Sleep(5 * time.Millisecond)
			if err := rt.Atomic(func(tx *Tx) error {
				box.Set(tx, 77)
				flag.Set(tx, true)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			select {
			case v := <-got:
				if v != 77 {
					t.Errorf("consumer got %d, want 77", v)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("consumer never woke from retry")
			}
		})
	}
}

// TestRetryWakesOnlyOnRelevantCommit verifies that unrelated commits do not
// satisfy the condition (the consumer re-checks and sleeps again) and that
// the relevant one does.
func TestRetryReChecksCondition(t *testing.T) {
	rt := NewDefault()
	flag := NewVar(0)
	unrelated := NewVar(0)
	var woke atomic.Int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = rt.Atomic(func(tx *Tx) error {
			woke.Add(1)
			if flag.Get(tx) != 3 {
				tx.Retry()
			}
			return nil
		})
	}()
	time.Sleep(2 * time.Millisecond)
	for i := 1; i <= 3; i++ {
		_ = rt.Atomic(func(tx *Tx) error {
			unrelated.Set(tx, i)
			flag.Set(tx, i)
			return nil
		})
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop stuck")
	}
	if woke.Load() < 2 {
		t.Errorf("expected multiple wakeups, got %d", woke.Load())
	}
}

// TestMultipleRetryWaiters: all waiters wake when the condition flips.
func TestMultipleRetryWaiters(t *testing.T) {
	rt := NewDefault()
	gate := NewVar(false)
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = rt.Atomic(func(tx *Tx) error {
				if !gate.Get(tx) {
					tx.Retry()
				}
				return nil
			})
		}()
	}
	time.Sleep(5 * time.Millisecond)
	if err := rt.Atomic(func(tx *Tx) error {
		gate.Set(tx, true)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("not all retry waiters woke")
	}
}

// TestSerialExcludesOptimistic: while a serial transaction runs, no
// optimistic transaction commits.
func TestSerialExcludesOptimistic(t *testing.T) {
	rt := NewDefault()
	v := NewVar(0)
	inSerial := make(chan struct{})
	releaseSerial := make(chan struct{})
	serialDone := make(chan struct{})
	go func() {
		defer close(serialDone)
		_ = rt.AtomicSerial(func(tx *Tx) error {
			close(inSerial)
			<-releaseSerial
			v.Set(tx, 1)
			return nil
		})
	}()
	<-inSerial
	committed := make(chan struct{})
	go func() {
		_ = rt.Atomic(func(tx *Tx) error {
			v.Set(tx, v.Get(tx)+10)
			return nil
		})
		close(committed)
	}()
	select {
	case <-committed:
		t.Fatal("optimistic transaction committed during serial execution")
	case <-time.After(20 * time.Millisecond):
	}
	close(releaseSerial)
	<-serialDone
	select {
	case <-committed:
	case <-time.After(5 * time.Second):
		t.Fatal("optimistic transaction never resumed after serial")
	}
	if got := v.Load(); got != 11 {
		t.Errorf("v = %d, want 11", got)
	}
}

// TestSerialDrainsActive: a serial transaction waits for in-flight
// optimistic transactions before running.
func TestSerialDrainsActive(t *testing.T) {
	rt := NewDefault()
	v := NewVar(0)
	inOptimistic := make(chan struct{})
	releaseOptimistic := make(chan struct{})
	var once sync.Once
	optDone := make(chan struct{})
	go func() {
		defer close(optDone)
		_ = rt.Atomic(func(tx *Tx) error {
			_ = v.Get(tx)
			once.Do(func() { close(inOptimistic) })
			<-releaseOptimistic
			v.Set(tx, 5)
			return nil
		})
	}()
	<-inOptimistic
	serialStarted := make(chan struct{})
	serialDone := make(chan struct{})
	go func() {
		defer close(serialDone)
		_ = rt.AtomicSerial(func(tx *Tx) error {
			close(serialStarted)
			v.Set(tx, v.Get(tx)+100)
			return nil
		})
	}()
	select {
	case <-serialStarted:
		t.Fatal("serial transaction started while optimistic was active")
	case <-time.After(20 * time.Millisecond):
	}
	close(releaseOptimistic)
	<-optDone
	select {
	case <-serialDone:
	case <-time.After(5 * time.Second):
		t.Fatal("serial transaction never ran")
	}
	if got := v.Load(); got != 105 {
		t.Errorf("v = %d, want 105", got)
	}
}

// TestContentionSerialization: under pathological conflicts the contention
// manager escalates to serial mode and everything still completes.
func TestContentionSerialization(t *testing.T) {
	rt := New(Config{SerializeAfter: 3})
	v := NewVar(0)
	const workers = 8
	const per = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = rt.Atomic(func(tx *Tx) error {
					v.Set(tx, v.Get(tx)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if got := v.Load(); got != workers*per {
		t.Errorf("v = %d, want %d", got, workers*per)
	}
}

// TestQuiescenceOrdersHooksAfterConcurrentReaders: a committed writer's
// AfterCommit hook must not run while a transaction that began before the
// commit is still live (privatization safety — the property atomic deferral
// relies on in Listing 1).
func TestQuiescenceOrdersHooksAfterConcurrentReaders(t *testing.T) {
	rt := NewDefault()
	v := NewVar(0)
	other := NewVar(0)

	readerIn := make(chan struct{})
	readerRelease := make(chan struct{})
	readerLive := atomic.Bool{}
	readerLive.Store(true)
	var readerOnce sync.Once

	go func() {
		_ = rt.Atomic(func(tx *Tx) error {
			_ = other.Get(tx) // no conflict with writer
			readerOnce.Do(func() { close(readerIn) })
			<-readerRelease
			readerLive.Store(false)
			return nil
		})
	}()
	<-readerIn

	hookRan := make(chan bool, 1)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		_ = rt.Atomic(func(tx *Tx) error {
			v.Set(tx, 1)
			tx.AfterCommit(func() {
				// If the reader is still live here, quiescence failed.
				hookRan <- readerLive.Load()
			})
			return nil
		})
	}()

	// The writer must be stuck in quiesce: its hook cannot have run.
	select {
	case <-hookRan:
		t.Fatal("hook ran before concurrent transaction finished")
	case <-time.After(20 * time.Millisecond):
	}
	close(readerRelease)
	select {
	case live := <-hookRan:
		if live {
			t.Error("hook observed the concurrent transaction still live")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hook never ran")
	}
	<-writerDone
	if rt.Snapshot().QuiesceWaits == 0 {
		t.Error("expected a recorded quiesce wait")
	}
}

// TestDisableQuiescence verifies the ablation switch: with quiescence off,
// the writer's hook runs without waiting for the concurrent reader.
func TestDisableQuiescence(t *testing.T) {
	rt := New(Config{DisableQuiescence: true})
	v := NewVar(0)
	other := NewVar(0)
	readerIn := make(chan struct{})
	readerRelease := make(chan struct{})
	var readerOnce sync.Once
	go func() {
		_ = rt.Atomic(func(tx *Tx) error {
			_ = other.Get(tx)
			readerOnce.Do(func() { close(readerIn) })
			<-readerRelease
			return nil
		})
	}()
	<-readerIn
	hookRan := make(chan struct{})
	if err := rt.Atomic(func(tx *Tx) error {
		v.Set(tx, 1)
		tx.AfterCommit(func() { close(hookRan) })
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-hookRan:
	case <-time.After(2 * time.Second):
		t.Fatal("hook did not run promptly with quiescence disabled")
	}
	close(readerRelease)
}

// TestConcurrentCommittersNoDeadlock: many writers committing (and thus
// quiescing) simultaneously must not deadlock on each other's registry
// slots.
func TestConcurrentCommittersNoDeadlock(t *testing.T) {
	rt := NewDefault()
	vars := make([]*Var[int], 32)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				idx := (w*7 + i) % len(vars)
				_ = rt.Atomic(func(tx *Tx) error {
					vars[idx].Set(tx, vars[idx].Get(tx)+1)
					return nil
				})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("commit storm deadlocked")
	}
	total := 0
	for _, v := range vars {
		total += v.Load()
	}
	if total != 16*200 {
		t.Errorf("total = %d, want %d", total, 16*200)
	}
}

// TestWriteSkewPrevented: TL2 with commit-time read validation must not
// admit write skew on this classic pattern (each tx reads both vars, writes
// one; invariant x+y <= 1).
func TestWriteSkewPrevented(t *testing.T) {
	rt := NewDefault()
	x := NewVar(0)
	y := NewVar(0)
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		// reset
		_ = rt.Atomic(func(tx *Tx) error { x.Set(tx, 0); y.Set(tx, 0); return nil })
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = rt.Atomic(func(tx *Tx) error {
				if x.Get(tx)+y.Get(tx) == 0 {
					x.Set(tx, 1)
				}
				return nil
			})
		}()
		go func() {
			defer wg.Done()
			_ = rt.Atomic(func(tx *Tx) error {
				if x.Get(tx)+y.Get(tx) == 0 {
					y.Set(tx, 1)
				}
				return nil
			})
		}()
		wg.Wait()
		if x.Load()+y.Load() > 1 {
			t.Fatalf("write skew: x=%d y=%d", x.Load(), y.Load())
		}
	}
}

// TestLoadNeverTorn: non-transactional Load must always return a committed
// snapshot value, never a mix.
func TestLoadNeverTorn(t *testing.T) {
	type pair struct{ a, b int }
	rt := NewDefault()
	v := NewVar(pair{0, 0})
	stop := make(chan struct{})
	var bad atomic.Int32
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			p := v.Load()
			if p.a != p.b {
				bad.Add(1)
				return
			}
		}
	}()
	for i := 1; i <= 2000; i++ {
		_ = rt.Atomic(func(tx *Tx) error {
			v.Set(tx, pair{i, i})
			return nil
		})
	}
	close(stop)
	wg.Wait()
	if bad.Load() != 0 {
		t.Error("torn read observed")
	}
}
