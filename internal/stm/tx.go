package stm

import (
	"fmt"
	"sort"
)

// abortReason classifies why an attempt failed; it feeds the contention
// manager and the statistics counters.
type abortReason int

const (
	abortNone          abortReason = iota
	abortConflict                  // read/validation/lock-acquire conflict
	abortCapacity                  // simulated HTM footprint overflow
	abortSyscall                   // irrevocability requested under HTM
	abortExplicitRetry             // user called Retry (condition sync)
	abortEscalate                  // user called Irrevocable under STM
	abortSnapshot                  // snapshot read outran the version chain
)

func (r abortReason) String() string {
	switch r {
	case abortConflict:
		return "conflict"
	case abortCapacity:
		return "capacity"
	case abortSyscall:
		return "syscall"
	case abortExplicitRetry:
		return "retry"
	case abortEscalate:
		return "escalate"
	case abortSnapshot:
		return "snapshot"
	default:
		return "none"
	}
}

// txSignal is the panic payload used for internal control flow (abort,
// retry, escalation). Atomic recovers it; any other panic propagates.
type txSignal struct {
	reason abortReason
}

type readEntry struct {
	m   *varMeta
	ver uint64 // raw lock word observed (unlocked, so even)
}

type writeEntry struct {
	v       txVar
	m       *varMeta
	pending any // *T box
	prevW   uint64
}

// smallWriteSet is the write-set size up to which read-after-write
// lookups use an inline linear scan over tx.writes instead of a map.
// Typical transactions write a handful of vars; for those the scan is
// both faster than hashing and allocation-free. Past this bound a map
// is built lazily (and its storage cached on the descriptor, so even
// repeated large transactions allocate it once).
const smallWriteSet = 8

// Tx is a transaction descriptor. A Tx is only valid inside the closure
// passed to Atomic and must not be retained or used from other goroutines.
type Tx struct {
	rt *Runtime

	rv     uint64 // read version (TL2 snapshot timestamp)
	reads  []readEntry
	writes []writeEntry
	// wmap indexes writes by var once the write set outgrows
	// smallWriteSet; nil while the linear-scan fast path is in use.
	// wmapCache keeps the (cleared) map across transactions so the
	// overflow path allocates at most once per descriptor.
	wmap      map[*varMeta]int
	wmapCache map[*varMeta]int

	active bool
	serial bool
	htm    bool
	slow   bool // htm mode or recorder attached: per-read slow path
	snap   bool // snapshot mode: reads resolve at the pinned rv (snapshot.go)
	// ro marks the whole Atomic call read-only: set for snapshot entry
	// points and kept across fallback attempts, so Set fails the same
	// way whether or not the snapshot fell back.
	ro bool

	snapReads uint64 // reads resolved in snapshot mode (flushed to stats)

	owner    OwnerID
	attempts int
	slotIdx  int

	// simulated HTM footprint, in cache lines
	htmReadLines  int
	htmWriteLines int

	// post-commit pipeline
	hooks []func() // ordered deferred operations (package core)
	frees []func() // deferred reclamation, after hooks (Listing 1)

	// history recording (Config.Recorder non-nil)
	id      uint64  // per-attempt transaction ID
	pendEvs []Event // events flushed only if this attempt commits

	rng uint64 // xorshift for backoff jitter
}

func newTx(rt *Runtime) *Tx {
	return &Tx{
		rt:      rt,
		slotIdx: -1,
		rng:     0x9e3779b97f4a7c15,
	}
}

// Runtime returns the runtime this transaction executes on.
func (tx *Tx) Runtime() *Runtime { return tx.rt }

// Owner returns the lock-owner identity of this transaction. Deferred
// operations inherit it, so transaction-friendly locks acquired by a
// transaction can be released (and reentered) by its deferred operations.
func (tx *Tx) Owner() OwnerID { return tx.owner }

// Serial reports whether the transaction is executing in serial
// (irrevocable) mode.
func (tx *Tx) Serial() bool { return tx.serial }

// Attempts reports how many times this Atomic call has attempted to run,
// including the current attempt (1 on the first try).
func (tx *Tx) Attempts() int { return tx.attempts }

func (tx *Tx) mustBeActive() {
	if !tx.active {
		panic("stm: use of Tx outside its transaction")
	}
}

func (tx *Tx) recordRead(m *varMeta, word uint64) {
	tx.reads = append(tx.reads, readEntry{m: m, ver: word})
	if tx.slow {
		tx.recordReadSlow(m, word)
	}
}

// recordReadSlow carries the recording and simulated-HTM sides of a
// read. tx.slow is precomputed at begin (htm mode, or a recorder
// attached) so the common path — no recorder, ModeSTM — costs one
// predictable branch and stays within the inlining budget.
func (tx *Tx) recordReadSlow(m *varMeta, word uint64) {
	if tx.rt.rec != nil {
		tx.rt.rec.Record(Event{Kind: EvRead, TxID: tx.id, Owner: tx.owner,
			Var: m.idLoad(), Ver: wordVersion(word)})
	}
	if tx.htm {
		tx.htmReadLines++
		if tx.rt.inj != nil {
			tx.injectCapacity()
		}
		tx.checkCapacity()
	}
}

// snapRead accounts one snapshot-mode read; ver is the commit version
// of the value the pin resolved to (what the consistent-cut checker
// verifies against the pinned timestamp).
func (tx *Tx) snapRead(m *varMeta, ver uint64) {
	tx.snapReads++
	if tx.slow && tx.rt.rec != nil {
		tx.rt.rec.Record(Event{Kind: EvRead, TxID: tx.id, Owner: tx.owner,
			Var: m.idLoad(), Ver: ver})
	}
}

func (tx *Tx) recordWrite(v txVar, m *varMeta, pending any) {
	if tx.ro {
		panic("stm: write inside a snapshot (read-only) transaction")
	}
	tx.writes = append(tx.writes, writeEntry{v: v, m: m, pending: pending})
	if tx.wmap != nil {
		tx.wmap[m] = len(tx.writes) - 1
	} else if len(tx.writes) > smallWriteSet {
		tx.spillWrites()
	}
	if tx.htm {
		tx.htmWriteLines++
		tx.checkCapacity()
	}
}

// findWrite returns the index of m's entry in tx.writes, or -1. Small
// write sets scan the slice backward (recent writes are re-read most
// often); large ones use the overflow map built by spillWrites.
func (tx *Tx) findWrite(m *varMeta) int {
	if tx.wmap != nil {
		if i, ok := tx.wmap[m]; ok {
			return i
		}
		return -1
	}
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].m == m {
			return i
		}
	}
	return -1
}

// spillWrites switches the write set from linear scan to map lookup,
// reusing the descriptor's cached map when one exists.
func (tx *Tx) spillWrites() {
	m := tx.wmapCache
	if m == nil {
		m = make(map[*varMeta]int, 4*smallWriteSet)
		tx.wmapCache = m
	}
	for i := range tx.writes {
		m[tx.writes[i].m] = i
	}
	tx.wmap = m
}

// HTMTouch models non-transactional memory touched inside a hardware
// transaction (e.g. a large private buffer filled by a compression call).
// Real HTM tracks every cache line a transaction touches, so touching more
// than the capacity aborts the transaction even if the data is thread
// private. readBytes and writeBytes are converted to 64-byte lines and
// added to the simulated footprint. In ModeSTM (and serial mode) this is a
// no-op, mirroring the paper's observation that the same code merely
// lengthens an STM transaction but overflows an HTM one.
func (tx *Tx) HTMTouch(readBytes, writeBytes int) {
	tx.mustBeActive()
	if !tx.htm {
		return
	}
	tx.htmReadLines += (readBytes + 63) / 64
	tx.htmWriteLines += (writeBytes + 63) / 64
	tx.checkCapacity()
}

func (tx *Tx) checkCapacity() {
	if tx.htmReadLines > tx.rt.cfg.HTMReadLines ||
		tx.htmWriteLines > tx.rt.cfg.HTMWriteLines {
		tx.rt.stats.AbortsCapacity.Add(1)
		panic(txSignal{abortCapacity})
	}
}

// injectCapacity fires a forced capacity abort with probability
// Inject.CapacityPct, from the per-read slow path of HTM transactions.
func (tx *Tx) injectCapacity() {
	if tx.rt.inj.hitCapacity() {
		tx.rt.stats.InjectedFaults.Add(1)
		tx.rt.stats.AbortsCapacity.Add(1)
		panic(txSignal{abortCapacity})
	}
}

func (tx *Tx) abortConflict() {
	tx.rt.stats.AbortsConflict.Add(1)
	panic(txSignal{abortConflict})
}

// Retry aborts the transaction and blocks until another commit changes a
// location in its read set, then re-executes it — the condition
// synchronization of Harris et al. described in the paper's Section 2. The
// transaction's effects are discarded; it will appear to have executed only
// from a state where it did not call Retry.
func (tx *Tx) Retry() {
	tx.mustBeActive()
	if tx.snap {
		// A pinned snapshot can never be woken: nothing it reads will
		// ever change at its timestamp. Fall back to the validating
		// read-only path, which registers on its read set and parks.
		panic(txSignal{abortSnapshot})
	}
	if tx.serial {
		// A serial transaction runs alone; waiting for another commit
		// would deadlock. Abort serial mode and re-run as a normal
		// transaction that can legitimately wait.
		panic(txSignal{abortExplicitRetry})
	}
	tx.rt.stats.Retries.Add(1)
	panic(txSignal{abortExplicitRetry})
}

// Irrevocable requests that the remainder of the transaction be executed
// irrevocably. Under STM the transaction restarts in serial mode (all other
// transactions drain first), modelling a GCC `synchronized` block reaching
// an unsafe operation. Under simulated HTM the request aborts the hardware
// transaction (privilege changes abort TSX); the contention manager will
// fall back to the serial path after SerializeAfter attempts.
func (tx *Tx) Irrevocable() {
	tx.mustBeActive()
	if tx.serial {
		return // already irrevocable
	}
	if tx.htm {
		tx.rt.stats.AbortsSyscall.Add(1)
		panic(txSignal{abortSyscall})
	}
	panic(txSignal{abortEscalate})
}

// AfterCommit schedules fn to run after the transaction commits and the
// runtime has quiesced, in registration order. If the transaction aborts,
// scheduled hooks are discarded (the re-executed closure registers them
// again). This is the primitive package core builds atomic_defer on.
//
// Hooks run after the transaction descriptor is released, so they may
// freely start new transactions.
func (tx *Tx) AfterCommit(fn func()) {
	tx.mustBeActive()
	if tx.ro {
		// Snapshot transactions commit without quiescing (they hold no
		// registry slot), so the "after quiescence" contract hooks rely
		// on cannot be honored; same answer on the fallback path so the
		// failure is deterministic.
		panic("stm: AfterCommit inside a snapshot (read-only) transaction")
	}
	tx.hooks = append(tx.hooks, fn)
}

// QueueFree schedules fn (a reclamation action) to run after the
// transaction commits, quiesces, and all AfterCommit hooks have finished —
// the paper's Listing 1 delays the transactional free list "a bit more,
// until all the deferred operations have completed", because deferred
// operations may refer to memory the transaction freed.
func (tx *Tx) QueueFree(fn func()) {
	tx.mustBeActive()
	if tx.ro {
		panic("stm: QueueFree inside a snapshot (read-only) transaction")
	}
	tx.frees = append(tx.frees, fn)
}

// Nested runs fn as a flat-nested transaction: its reads and writes merge
// into tx, and an error aborts the whole flattened transaction (Atomic
// returns the error). This mirrors C++ TM's flattened nesting, which the
// paper relies on for deadlock-free multi-lock acquisition inside
// atomic_defer.
func (tx *Tx) Nested(fn func(tx *Tx) error) error {
	tx.mustBeActive()
	return fn(tx)
}

// extend attempts to advance the transaction's read version to the current
// global clock by revalidating every read. Returns false if any read is no
// longer valid.
func (tx *Tx) extend() bool {
	newRV := tx.rt.clock.Load()
	for i := range tx.reads {
		e := &tx.reads[i]
		cur := e.m.lock.Load()
		if cur != e.ver {
			return false
		}
	}
	tx.rv = newRV
	tx.rt.slots[tx.slotIdx].setRV(newRV)
	tx.rt.stats.Extensions.Add(1)
	return true
}

// validateReads checks the read set at commit time: every entry must be
// unchanged, and unlocked or locked by this transaction.
func (tx *Tx) validateReads() bool {
	for i := range tx.reads {
		e := &tx.reads[i]
		cur := e.m.lock.Load()
		if cur == e.ver {
			continue
		}
		if wordLocked(cur) && e.m.owner.Load() == tx && (cur&^lockedBit) == e.ver {
			continue // we hold the lock; version unchanged beneath it
		}
		return false
	}
	return true
}

// sortWrites orders the write set by var ID so that commit-time lock
// acquisition is globally ordered (deadlock- and livelock-free against
// other committers). Small sets use insertion sort — allocation-free,
// unlike sort.Slice, whose interface conversion and closure cost two
// heap allocations per writing commit. Lookups never happen after
// sorting (the user closure has returned), so wmap is left stale; it
// is discarded by reset.
func (tx *Tx) sortWrites() {
	w := tx.writes
	if len(w) <= 32 {
		for i := 1; i < len(w); i++ {
			for j := i; j > 0 && w[j].m.idLoad() < w[j-1].m.idLoad(); j-- {
				w[j], w[j-1] = w[j-1], w[j]
			}
		}
		return
	}
	sort.Slice(w, func(i, j int) bool {
		return w[i].m.idLoad() < w[j].m.idLoad()
	})
}

// reset prepares the descriptor for another attempt or for reuse.
func (tx *Tx) reset() {
	tx.reads = tx.reads[:0]
	clear(tx.writes) // drop pending-value boxes so the GC can reclaim them
	tx.writes = tx.writes[:0]
	if tx.wmap != nil {
		clear(tx.wmap)
		tx.wmap = nil // back to the linear-scan fast path
	}
	tx.hooks = nil // moved out or discarded; never reused across attempts
	tx.frees = nil
	tx.pendEvs = tx.pendEvs[:0]
	tx.htmReadLines = 0
	tx.htmWriteLines = 0
	tx.active = false
	tx.serial = false
	tx.htm = false
	tx.slow = false
	tx.snap = false
	tx.ro = false
	tx.snapReads = 0
}

func (tx *Tx) String() string {
	return fmt.Sprintf("Tx(rv=%d reads=%d writes=%d serial=%v)",
		tx.rv, len(tx.reads), len(tx.writes), tx.serial)
}

// xorshift64 for backoff jitter.
func (tx *Tx) nextRand() uint64 {
	x := tx.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	tx.rng = x
	return x
}
