package stm

import "fmt"

// EventKind discriminates history events. The runtime emits events only
// when a Recorder is attached (Config.Recorder); cooperating packages
// (core, txlock) emit their own kinds through RecordEvent/RecordOnCommit.
type EventKind uint8

const (
	EvNone EventKind = iota

	// EvBegin marks the start of one transaction attempt. Ver is the
	// attempt's read version (its TL2 begin snapshot).
	EvBegin
	// EvRead records a transactional read that returned to the user:
	// Var is the variable, Ver the commit version of the value observed.
	// Serial-mode reads are not recorded (the transaction runs alone).
	EvRead
	// EvWrite records one published write of a committing transaction.
	// Ver is the commit (write) version shared by all of the
	// transaction's writes.
	EvWrite
	// EvCommit marks a successful commit. Ver is the write version (0
	// for a read-only commit with no hooks); Aux is AuxSerial for a
	// serial-mode commit.
	EvCommit
	// EvAbort marks the end of a failed attempt. Aux is an AbortCause*
	// constant. The attempt's EvRead events precede it with the same
	// TxID; the opacity checker validates that read set.
	EvAbort
	// EvQuiesceStart/End bracket a committer's privatization-safety
	// wait. Ver is the commit version being quiesced for.
	EvQuiesceStart
	EvQuiesceEnd
	// EvDirectWrite records a non-transactional StoreDirect publish
	// (used by deferred operations). Var/Ver as for EvWrite; TxID is 0.
	EvDirectWrite

	// Lock events are queued by package txlock during the attempt and
	// flushed only if the attempt commits, carrying the commit version.
	// Var is the lock's owner-variable ID, Owner the acting identity.
	EvLockAcquire   // Aux = resulting reentrancy depth
	EvLockRelease   // Aux = remaining depth (0 = fully released)
	EvLockSubscribe // Aux = owner observed (0 or the subscriber itself)

	// Deferral events are emitted by package core. Aux is the deferred
	// operation ID in all four.
	EvDeferEnqueue // queued at the deferring transaction's commit
	EvDeferLock    // one per protected object: Var = lock owner-var ID
	EvDeferStart   // the deferred λ begins executing
	EvDeferEnd     // the λ finished and its locks were released

	// WAL events are emitted by package wal. EvWALAppend is queued on the
	// appending transaction (flushed only if it commits): Aux is the LSN
	// it reserved, Var the log's lock owner-variable ID, and Aux2 the
	// global commit sequence number when the store runs with multiple
	// WAL lanes (0 on a single-lane store — GSNs start at 1). A commit
	// that touches several lanes emits one EvWALAppend per lane, all
	// sharing the TxID and the GSN. EvWALDurable is emitted by a flush
	// after its fsync returned: Aux is the new durable watermark — every
	// record with LSN ≤ Aux is on stable storage. The durability checker
	// (internal/check) consumes both.
	EvWALAppend
	EvWALDurable

	// Watcher events are emitted by the watcher-based retry path
	// (watch.go). EvWatchRegister records one registration of a blocked
	// retry on a read-set var: Var is the var's ID, Ver the (unlocked)
	// version the aborted attempt observed there — any commit of that
	// var with a greater version must wake the waiter. EvWake records
	// the waiter resuming: Ver is the global clock at wake time and Aux
	// an AuxWake* cause. TxID ties both to the aborted attempt's
	// EvAbort(retry). The retry-wakeup checker (internal/check)
	// consumes both.
	EvWatchRegister
	EvWake

	// EvSnapTruncate records a depth-bound version-chain truncation
	// during a publish (see snapshot.go): Var is the truncated var, Ver
	// the truncation horizon the publisher used, Aux the number of
	// chain nodes dropped that some registered snapshot could still
	// have needed (each such snapshot will miss and fall back). TxID is
	// the publishing transaction's attempt (0 for StoreDirect). The
	// snapshot-consistency checker verifies the horizon never ran ahead
	// of a registered reader's pin.
	EvSnapTruncate
)

func (k EventKind) String() string {
	switch k {
	case EvBegin:
		return "begin"
	case EvRead:
		return "read"
	case EvWrite:
		return "write"
	case EvCommit:
		return "commit"
	case EvAbort:
		return "abort"
	case EvQuiesceStart:
		return "quiesce-start"
	case EvQuiesceEnd:
		return "quiesce-end"
	case EvDirectWrite:
		return "direct-write"
	case EvLockAcquire:
		return "lock-acquire"
	case EvLockRelease:
		return "lock-release"
	case EvLockSubscribe:
		return "lock-subscribe"
	case EvDeferEnqueue:
		return "defer-enqueue"
	case EvDeferLock:
		return "defer-lock"
	case EvDeferStart:
		return "defer-start"
	case EvDeferEnd:
		return "defer-end"
	case EvWALAppend:
		return "wal-append"
	case EvWALDurable:
		return "wal-durable"
	case EvWatchRegister:
		return "watch-register"
	case EvWake:
		return "wake"
	case EvSnapTruncate:
		return "snap-truncate"
	default:
		return "event(?)"
	}
}

// Abort causes reported in EvAbort.Aux.
const (
	AbortCauseConflict = uint64(abortConflict)
	AbortCauseCapacity = uint64(abortCapacity)
	AbortCauseSyscall  = uint64(abortSyscall)
	AbortCauseRetry    = uint64(abortExplicitRetry)
	AbortCauseEscalate = uint64(abortEscalate)
	AbortCauseSnapshot = uint64(abortSnapshot)
	AbortCauseUser     = 64 // fn returned a non-nil error
)

// AuxSerial marks a serial-mode commit in EvCommit.Aux.
const AuxSerial = 1

// AuxSnapshot marks a snapshot-mode attempt: on its EvBegin (whose Ver
// is the pinned read version every read must be consistent at) and on
// its EvCommit. See snapshot.go and internal/check's snapshot rule.
const AuxSnapshot = 2

// Wake causes reported in EvWake.Aux.
const (
	// AuxWakeCommit: the waiter parked and a writing commit (or
	// StoreDirect) to a watched var broadcast it.
	AuxWakeCommit = 0
	// AuxWakeImmediate: post-registration validation found the read set
	// already changed; the waiter never parked.
	AuxWakeImmediate = 1
	// AuxWakeCancel: the context was cancelled (or its deadline
	// expired) while parked.
	AuxWakeCancel = 2
)

// Event is one entry of a recorded execution history. Fields not
// meaningful for a kind are zero. Seq is assigned by the Recorder (the
// runtime leaves it 0); within one goroutine's emission order it is
// monotonic, but events of concurrent transactions interleave in
// recorder-arrival order, so checkers order cross-transaction facts by
// Ver (version-clock timestamps), not Seq.
type Event struct {
	Seq   uint64
	Kind  EventKind
	TxID  uint64 // per-attempt unique ID (0 for non-transactional events)
	Owner OwnerID
	Var   uint64 // variable ID (see Var.ID)
	Ver   uint64 // version-clock timestamp
	Aux   uint64 // kind-specific (see the kind constants)
	Aux2  uint64 // second kind-specific slot (EvWALAppend: the GSN)
}

func (e Event) String() string {
	s := fmt.Sprintf("#%d %s tx=%d owner=%d var=%d ver=%d aux=%d",
		e.Seq, e.Kind, e.TxID, e.Owner, e.Var, e.Ver, e.Aux)
	if e.Aux2 != 0 {
		s += fmt.Sprintf(" aux2=%d", e.Aux2)
	}
	return s
}

// Recorder consumes runtime events. Implementations must be safe for
// concurrent use; Record is called from transaction goroutines on hot
// paths, so it should be cheap (package history provides an append-only
// log). A nil Config.Recorder disables recording entirely — every hook
// site guards with a single pointer test.
type Recorder interface {
	Record(Event)
}

// recEvent emits ev to the attached recorder, if any.
func (rt *Runtime) recEvent(ev Event) {
	if rt.rec != nil {
		rt.rec.Record(ev)
	}
}

// RecordEvent lets cooperating packages (core, txlock) emit events into
// the runtime's recorder. It is a no-op when no recorder is attached.
func (rt *Runtime) RecordEvent(ev Event) { rt.recEvent(ev) }

// Recording reports whether a recorder is attached.
func (rt *Runtime) Recording() bool { return rt.rec != nil }

// ID returns this attempt's unique transaction ID (0 when no recorder
// is attached; IDs are only assigned while recording).
func (tx *Tx) ID() uint64 { return tx.id }

// RecordOnCommit queues ev to be emitted if and when the current
// attempt commits. The flush fills in TxID and, if ev.Ver is zero, the
// commit version. Queued events are discarded if the attempt aborts —
// this is how txlock records only lock transitions that took effect.
func (tx *Tx) RecordOnCommit(ev Event) {
	if tx.rt.rec == nil {
		return
	}
	tx.pendEvs = append(tx.pendEvs, ev)
}

// beginRecord assigns a fresh transaction ID and emits EvBegin; aux is
// AuxSnapshot for snapshot attempts (whose Ver is the pin, not a TL2
// read version). Called once per attempt, only while recording.
func (tx *Tx) beginRecord(rv, aux uint64) {
	tx.id = tx.rt.txIDCtr.Add(1)
	tx.rt.rec.Record(Event{Kind: EvBegin, TxID: tx.id, Owner: tx.owner, Ver: rv, Aux: aux})
}

// flushCommitEvents emits the attempt's buffered writes, queued lock and
// deferral events, and the final EvCommit. wv is the commit version (0
// for a hook-free read-only commit); aux tags serial commits.
func (tx *Tx) flushCommitEvents(wv uint64, aux uint64) {
	rec := tx.rt.rec
	if rec == nil {
		return
	}
	for i := range tx.writes {
		e := &tx.writes[i]
		rec.Record(Event{Kind: EvWrite, TxID: tx.id, Owner: tx.owner, Var: e.m.idLoad(), Ver: wv})
	}
	fill := wv
	if fill == 0 {
		fill = tx.rv // read-only commit: stamp queued events with the snapshot
	}
	for _, ev := range tx.pendEvs {
		ev.TxID = tx.id
		if ev.Ver == 0 {
			ev.Ver = fill
		}
		rec.Record(ev)
	}
	tx.pendEvs = tx.pendEvs[:0]
	rec.Record(Event{Kind: EvCommit, TxID: tx.id, Owner: tx.owner, Ver: wv, Aux: aux})
}
