package stm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestVarGetSetBasic(t *testing.T) {
	rt := NewDefault()
	v := NewVar(41)
	err := rt.Atomic(func(tx *Tx) error {
		if got := v.Get(tx); got != 41 {
			t.Errorf("Get = %d, want 41", got)
		}
		v.Set(tx, 42)
		if got := v.Get(tx); got != 42 {
			t.Errorf("read-own-write = %d, want 42", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if got := v.Load(); got != 42 {
		t.Errorf("Load after commit = %d, want 42", got)
	}
}

func TestZeroVarUsable(t *testing.T) {
	rt := NewDefault()
	var v Var[string]
	if got := v.Load(); got != "" {
		t.Errorf("zero Var Load = %q, want empty", got)
	}
	if err := rt.Atomic(func(tx *Tx) error {
		if got := v.Get(tx); got != "" {
			t.Errorf("zero Var Get = %q", got)
		}
		v.Set(tx, "hello")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.Load(); got != "hello" {
		t.Errorf("Load = %q, want hello", got)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	rt := NewDefault()
	v := NewVar(1)
	sentinel := errors.New("user abort")
	err := rt.Atomic(func(tx *Tx) error {
		v.Set(tx, 99)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got := v.Load(); got != 1 {
		t.Errorf("aborted write leaked: %d", got)
	}
}

func TestUserErrorAbortsSerial(t *testing.T) {
	rt := NewDefault()
	v := NewVar(1)
	sentinel := errors.New("boom")
	err := rt.AtomicSerial(func(tx *Tx) error {
		v.Set(tx, 99)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if got := v.Load(); got != 1 {
		t.Errorf("serial aborted write leaked: %d", got)
	}
}

func TestUserPanicPropagatesAndCleansUp(t *testing.T) {
	rt := NewDefault()
	v := NewVar(1)
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("expected panic to propagate")
			}
		}()
		_ = rt.Atomic(func(tx *Tx) error {
			v.Set(tx, 99)
			panic("user panic")
		})
	}()
	if got := v.Load(); got != 1 {
		t.Errorf("write visible after panic: %d", got)
	}
	// The runtime must still be usable (slot released).
	done := make(chan struct{})
	go func() {
		_ = rt.AtomicSerial(func(tx *Tx) error { return nil })
		close(done)
	}()
	<-done
}

func TestUpdate(t *testing.T) {
	rt := NewDefault()
	v := NewVar(10)
	if err := rt.Atomic(func(tx *Tx) error {
		v.Update(tx, func(x int) int { return x * 3 })
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.Load(); got != 30 {
		t.Errorf("Update result = %d, want 30", got)
	}
}

func TestMultipleVarsAtomicity(t *testing.T) {
	rt := NewDefault()
	a := NewVar(100)
	b := NewVar(0)
	const transfer = 30
	if err := rt.Atomic(func(tx *Tx) error {
		a.Set(tx, a.Get(tx)-transfer)
		b.Set(tx, b.Get(tx)+transfer)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if a.Load()+b.Load() != 100 {
		t.Errorf("sum violated: %d + %d", a.Load(), b.Load())
	}
	if a.Load() != 70 || b.Load() != 30 {
		t.Errorf("got a=%d b=%d", a.Load(), b.Load())
	}
}

func TestConcurrentCounter(t *testing.T) {
	rt := NewDefault()
	v := NewVar(0)
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := rt.Atomic(func(tx *Tx) error {
					v.Set(tx, v.Get(tx)+1)
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := v.Load(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestBankInvariant moves money among accounts from many goroutines and
// checks, transactionally and finally, that the total is conserved.
func TestBankInvariant(t *testing.T) {
	rt := NewDefault()
	const nAccounts = 16
	const initial = 1000
	accounts := make([]*Var[int], nAccounts)
	for i := range accounts {
		accounts[i] = NewVar(initial)
	}
	var stop atomic.Bool
	var auditors, movers sync.WaitGroup
	// Auditors: transactional sum must always be exact.
	for a := 0; a < 2; a++ {
		auditors.Add(1)
		go func() {
			defer auditors.Done()
			for !stop.Load() {
				sum := 0
				if err := rt.Atomic(func(tx *Tx) error {
					sum = 0
					for _, acct := range accounts {
						sum += acct.Get(tx)
					}
					return nil
				}); err != nil {
					t.Errorf("audit: %v", err)
					return
				}
				if sum != nAccounts*initial {
					t.Errorf("audit saw inconsistent total %d", sum)
					return
				}
			}
		}()
	}
	// Movers.
	for w := 0; w < 6; w++ {
		movers.Add(1)
		go func(seed uint64) {
			defer movers.Done()
			rng := seed*2654435761 + 1
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			for i := 0; i < 400; i++ {
				from, to := next(nAccounts), next(nAccounts)
				if from == to {
					continue
				}
				amt := next(50) + 1
				if err := rt.Atomic(func(tx *Tx) error {
					f := accounts[from].Get(tx)
					if f < amt {
						return nil // insufficient; commit no-op
					}
					accounts[from].Set(tx, f-amt)
					accounts[to].Set(tx, accounts[to].Get(tx)+amt)
					return nil
				}); err != nil {
					t.Errorf("move: %v", err)
					return
				}
			}
		}(uint64(w) + 1)
	}
	movers.Wait()
	stop.Store(true)
	auditors.Wait()
	total := 0
	for _, acct := range accounts {
		total += acct.Load()
	}
	if total != nAccounts*initial {
		t.Errorf("final total = %d, want %d", total, nAccounts*initial)
	}
}

func TestReadOnlyTxNoClockAdvance(t *testing.T) {
	rt := NewDefault()
	v := NewVar(7)
	before := rt.GlobalClock()
	for i := 0; i < 10; i++ {
		if err := rt.Atomic(func(tx *Tx) error {
			_ = v.Get(tx)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if after := rt.GlobalClock(); after != before {
		t.Errorf("read-only transactions advanced the clock: %d -> %d", before, after)
	}
}

func TestExtensionOnConcurrentCommit(t *testing.T) {
	rt := NewDefault()
	a := NewVar(1)
	b := NewVar(2)
	// Transaction reads a, then another transaction commits to b, then the
	// first reads b: the read of b sees a version > rv and must extend
	// (a unchanged, so extension succeeds) rather than abort.
	//
	// The conflicting commit runs on another goroutine (a writer's commit
	// quiesces, i.e. waits for this transaction to finish, so it cannot run
	// inline); we only wait for its update to become visible.
	var wg sync.WaitGroup
	attempts := 0
	if err := rt.Atomic(func(tx *Tx) error {
		attempts++
		_ = a.Get(tx)
		if attempts == 1 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = rt.Atomic(func(tx2 *Tx) error {
					b.Set(tx2, 20)
					return nil
				})
			}()
			for b.Load() != 20 {
				// busy-wait for visibility; the writer publishes
				// before it quiesces
			}
		}
		_ = b.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if attempts != 1 {
		t.Errorf("expected extension (1 attempt), got %d attempts", attempts)
	}
	if rt.Snapshot().Extensions == 0 {
		t.Error("no extension recorded")
	}
}

func TestAbortWhenExtensionImpossible(t *testing.T) {
	rt := NewDefault()
	a := NewVar(1)
	b := NewVar(2)
	var wg sync.WaitGroup
	attempts := 0
	if err := rt.Atomic(func(tx *Tx) error {
		attempts++
		_ = a.Get(tx)
		if attempts == 1 {
			// Invalidate a itself, so extension must fail.
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = rt.Atomic(func(tx2 *Tx) error {
					a.Set(tx2, 10)
					b.Set(tx2, 20)
					return nil
				})
			}()
			for a.Load() != 10 {
				// wait for visibility
			}
		}
		_ = b.Get(tx) // forces validation; first attempt must abort
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if attempts < 2 {
		t.Errorf("expected abort+retry, got %d attempts", attempts)
	}
}

func TestStoreDirectVisibleAndVersioned(t *testing.T) {
	rt := NewDefault()
	v := NewVar(5)
	before := v.Version()
	v.StoreDirect(rt, 6)
	if got := v.Load(); got != 6 {
		t.Errorf("Load = %d, want 6", got)
	}
	if v.Version() <= before {
		t.Errorf("StoreDirect did not bump version: %d -> %d", before, v.Version())
	}
	// A transaction that read v before the StoreDirect must not commit a
	// stale dependent write.
	attempts := 0
	if err := rt.Atomic(func(tx *Tx) error {
		attempts++
		x := v.Get(tx)
		if attempts == 1 {
			v.StoreDirect(rt, 100)
		}
		v.Set(tx, x+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.Load(); got != 101 {
		t.Errorf("lost update: v = %d, want 101", got)
	}
}

func TestAfterCommitOrderingAndDiscard(t *testing.T) {
	rt := NewDefault()
	v := NewVar(0)
	var order []string
	var mu sync.Mutex
	add := func(s string) func() {
		return func() {
			mu.Lock()
			order = append(order, s)
			mu.Unlock()
		}
	}
	sentinel := errors.New("no")
	// Aborted transaction: hooks must not run.
	_ = rt.Atomic(func(tx *Tx) error {
		tx.AfterCommit(add("discarded"))
		return sentinel
	})
	if err := rt.Atomic(func(tx *Tx) error {
		v.Set(tx, 1)
		tx.AfterCommit(add("first"))
		tx.AfterCommit(add("second"))
		tx.QueueFree(add("free"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "second", "free"}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAfterCommitHookCanRunTransactions(t *testing.T) {
	rt := NewDefault()
	v := NewVar(0)
	w := NewVar(0)
	if err := rt.Atomic(func(tx *Tx) error {
		v.Set(tx, 1)
		tx.AfterCommit(func() {
			if err := rt.Atomic(func(tx2 *Tx) error {
				w.Set(tx2, v.Get(tx2)+10)
				return nil
			}); err != nil {
				t.Errorf("hook transaction: %v", err)
			}
		})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := w.Load(); got != 11 {
		t.Errorf("w = %d, want 11", got)
	}
}

func TestIrrevocableEscalatesSTM(t *testing.T) {
	rt := NewDefault()
	v := NewVar(0)
	sideEffects := 0
	if err := rt.Atomic(func(tx *Tx) error {
		tx.Irrevocable()
		if !tx.Serial() {
			t.Error("expected serial mode after Irrevocable")
		}
		sideEffects++ // safe: irrevocable runs at most once past this point
		v.Set(tx, sideEffects)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sideEffects != 1 {
		t.Errorf("irrevocable section ran %d times", sideEffects)
	}
	if got := v.Load(); got != 1 {
		t.Errorf("v = %d", got)
	}
	if rt.Snapshot().Serializations == 0 {
		t.Error("no serialization recorded")
	}
}

func TestNestedFlattening(t *testing.T) {
	rt := NewDefault()
	v := NewVar(0)
	if err := rt.Atomic(func(tx *Tx) error {
		v.Set(tx, 1)
		return tx.Nested(func(tx *Tx) error {
			if v.Get(tx) != 1 {
				t.Error("nested tx does not see outer write")
			}
			v.Set(tx, 2)
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.Load(); got != 2 {
		t.Errorf("v = %d, want 2", got)
	}
	// A nested error aborts the whole flattened transaction.
	sentinel := errors.New("inner")
	err := rt.Atomic(func(tx *Tx) error {
		v.Set(tx, 99)
		return tx.Nested(func(tx *Tx) error { return sentinel })
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if got := v.Load(); got != 2 {
		t.Errorf("flattened abort leaked write: %d", got)
	}
}

func TestTxUseOutsideTransactionPanics(t *testing.T) {
	rt := NewDefault()
	var leaked *Tx
	if err := rt.Atomic(func(tx *Tx) error {
		leaked = tx
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on use of escaped Tx")
		}
	}()
	v := NewVar(0)
	_ = v.Get(leaked)
}

func TestStatsCounting(t *testing.T) {
	rt := NewDefault()
	v := NewVar(0)
	before := rt.Snapshot()
	for i := 0; i < 5; i++ {
		if err := rt.Atomic(func(tx *Tx) error {
			v.Set(tx, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	d := rt.Snapshot().Sub(before)
	if d.Commits != 5 {
		t.Errorf("commits = %d, want 5", d.Commits)
	}
	if d.Starts < 5 {
		t.Errorf("starts = %d, want >= 5", d.Starts)
	}
	if s := d.String(); s == "" {
		t.Error("empty stats string")
	}
}

func TestModeString(t *testing.T) {
	if ModeSTM.String() != "STM" || ModeHTM.String() != "HTM" {
		t.Error("Mode.String broken")
	}
	if Mode(9).String() != "Mode(?)" {
		t.Error("unknown mode string")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.SerializeAfter != 100 {
		t.Errorf("STM SerializeAfter = %d, want 100 (GCC default)", c.SerializeAfter)
	}
	h := Config{Mode: ModeHTM}.withDefaults()
	if h.SerializeAfter != 2 {
		t.Errorf("HTM SerializeAfter = %d, want 2 (GCC default)", h.SerializeAfter)
	}
	if h.HTMWriteLines != DefaultHTMWriteLines || h.HTMReadLines != DefaultHTMReadLines {
		t.Error("HTM capacity defaults not applied")
	}
}

func TestOwnerIDsUnique(t *testing.T) {
	rt := NewDefault()
	seen := make(map[OwnerID]bool)
	for i := 0; i < 100; i++ {
		id := rt.NewOwner()
		if id == 0 {
			t.Fatal("zero OwnerID allocated")
		}
		if seen[id] {
			t.Fatalf("duplicate OwnerID %d", id)
		}
		seen[id] = true
	}
}

func TestAtomicAsPropagatesOwner(t *testing.T) {
	rt := NewDefault()
	me := rt.NewOwner()
	if err := rt.AtomicAs(me, func(tx *Tx) error {
		if tx.Owner() != me {
			t.Errorf("tx.Owner() = %d, want %d", tx.Owner(), me)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTxStringer(t *testing.T) {
	rt := NewDefault()
	_ = rt.Atomic(func(tx *Tx) error {
		if s := tx.String(); s == "" {
			t.Error("empty Tx string")
		}
		return nil
	})
	for _, r := range []abortReason{abortNone, abortConflict, abortCapacity, abortSyscall, abortExplicitRetry, abortEscalate} {
		if r.String() == "" {
			t.Error("empty reason string")
		}
	}
}

func ExampleRuntime_Atomic() {
	rt := NewDefault()
	balance := NewVar(100)
	_ = rt.Atomic(func(tx *Tx) error {
		balance.Set(tx, balance.Get(tx)-25)
		return nil
	})
	fmt.Println(balance.Load())
	// Output: 75
}
