package stm

import (
	"fmt"
	"sync/atomic"
)

// Stats holds the runtime's monotonic event counters. All fields are
// updated atomically; Snapshot produces a consistent-enough copy for
// reporting (individual counters are exact; cross-counter skew is bounded
// by in-flight transactions).
type Stats struct {
	Starts         atomic.Uint64 // transaction attempts begun
	Commits        atomic.Uint64 // top-level commits (incl. serial)
	UserAborts     atomic.Uint64 // fn returned a non-nil error
	AbortsConflict atomic.Uint64 // validation / lock-acquire conflicts
	AbortsCapacity atomic.Uint64 // simulated HTM footprint overflow
	AbortsSyscall  atomic.Uint64 // irrevocability requested under HTM
	Retries        atomic.Uint64 // explicit Retry calls (condition sync)
	Extensions     atomic.Uint64 // successful read-version extensions
	Serializations atomic.Uint64 // escalations to serial mode
	SerialRuns     atomic.Uint64 // serial-mode executions (incl. AtomicSerial)
	QuiesceWaits   atomic.Uint64 // quiesce calls that actually waited
	QuiesceNanos   atomic.Uint64 // total nanoseconds spent waiting in quiesce
	DeferredOps    atomic.Uint64 // AfterCommit hooks executed (set by core)
	DeferredFrees  atomic.Uint64 // QueueFree actions executed (set by mempool)
	InjectedFaults atomic.Uint64 // faults fired by Config.Inject
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Starts         uint64
	Commits        uint64
	UserAborts     uint64
	AbortsConflict uint64
	AbortsCapacity uint64
	AbortsSyscall  uint64
	Retries        uint64
	Extensions     uint64
	Serializations uint64
	SerialRuns     uint64
	QuiesceWaits   uint64
	QuiesceNanos   uint64
	DeferredOps    uint64
	DeferredFrees  uint64
	InjectedFaults uint64
}

// Stats returns a pointer to the live counters (for incrementing by
// cooperating packages such as core and mempool).
func (rt *Runtime) Stats() *Stats { return &rt.stats }

// Snapshot copies the current counter values.
func (rt *Runtime) Snapshot() StatsSnapshot {
	s := &rt.stats
	return StatsSnapshot{
		Starts:         s.Starts.Load(),
		Commits:        s.Commits.Load(),
		UserAborts:     s.UserAborts.Load(),
		AbortsConflict: s.AbortsConflict.Load(),
		AbortsCapacity: s.AbortsCapacity.Load(),
		AbortsSyscall:  s.AbortsSyscall.Load(),
		Retries:        s.Retries.Load(),
		Extensions:     s.Extensions.Load(),
		Serializations: s.Serializations.Load(),
		SerialRuns:     s.SerialRuns.Load(),
		QuiesceWaits:   s.QuiesceWaits.Load(),
		QuiesceNanos:   s.QuiesceNanos.Load(),
		DeferredOps:    s.DeferredOps.Load(),
		DeferredFrees:  s.DeferredFrees.Load(),
		InjectedFaults: s.InjectedFaults.Load(),
	}
}

// Sub returns the per-field difference s - old (for measuring an interval).
func (s StatsSnapshot) Sub(old StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Starts:         s.Starts - old.Starts,
		Commits:        s.Commits - old.Commits,
		UserAborts:     s.UserAborts - old.UserAborts,
		AbortsConflict: s.AbortsConflict - old.AbortsConflict,
		AbortsCapacity: s.AbortsCapacity - old.AbortsCapacity,
		AbortsSyscall:  s.AbortsSyscall - old.AbortsSyscall,
		Retries:        s.Retries - old.Retries,
		Extensions:     s.Extensions - old.Extensions,
		Serializations: s.Serializations - old.Serializations,
		SerialRuns:     s.SerialRuns - old.SerialRuns,
		QuiesceWaits:   s.QuiesceWaits - old.QuiesceWaits,
		QuiesceNanos:   s.QuiesceNanos - old.QuiesceNanos,
		DeferredOps:    s.DeferredOps - old.DeferredOps,
		DeferredFrees:  s.DeferredFrees - old.DeferredFrees,
		InjectedFaults: s.InjectedFaults - old.InjectedFaults,
	}
}

// Aborts returns the total number of aborted attempts of all kinds
// (excluding user aborts, which are final).
func (s StatsSnapshot) Aborts() uint64 {
	return s.AbortsConflict + s.AbortsCapacity + s.AbortsSyscall
}

func (s StatsSnapshot) String() string {
	return fmt.Sprintf(
		"commits=%d aborts(conflict=%d capacity=%d syscall=%d) retries=%d serializations=%d serialRuns=%d quiesce(waits=%d ms=%.1f) deferred(ops=%d frees=%d) injected=%d",
		s.Commits, s.AbortsConflict, s.AbortsCapacity, s.AbortsSyscall,
		s.Retries, s.Serializations, s.SerialRuns,
		s.QuiesceWaits, float64(s.QuiesceNanos)/1e6,
		s.DeferredOps, s.DeferredFrees, s.InjectedFaults)
}
