package stm

import (
	"fmt"
	"sync/atomic"
)

// Stats holds the runtime's monotonic event counters. All fields are
// updated atomically; Snapshot produces a consistent-enough copy for
// reporting (individual counters are exact; cross-counter skew is bounded
// by in-flight transactions).
type Stats struct {
	Starts         atomic.Uint64 // transaction attempts begun
	Commits        atomic.Uint64 // top-level commits (incl. serial)
	UserAborts     atomic.Uint64 // fn returned a non-nil error
	AbortsConflict atomic.Uint64 // validation / lock-acquire conflicts
	AbortsCapacity atomic.Uint64 // simulated HTM footprint overflow
	AbortsSyscall  atomic.Uint64 // irrevocability requested under HTM
	Retries        atomic.Uint64 // explicit Retry calls (condition sync)
	Extensions     atomic.Uint64 // successful read-version extensions
	Serializations atomic.Uint64 // escalations to serial mode
	SerialRuns     atomic.Uint64 // serial-mode executions (incl. AtomicSerial)
	QuiesceWaits   atomic.Uint64 // quiesce calls that actually waited
	QuiesceNanos   atomic.Uint64 // total nanoseconds spent waiting in quiesce
	DeferredOps    atomic.Uint64 // AfterCommit hooks executed (set by core)
	DeferredFrees  atomic.Uint64 // QueueFree actions executed (set by mempool)
	InjectedFaults atomic.Uint64 // faults fired by Config.Inject

	// WAL counters, incremented by package wal. A "flush" is one drain
	// of the log's batch queue followed by one fsync; WALRecords /
	// WALFlushes is therefore the mean group-commit batch size.
	WALRecords     atomic.Uint64 // records appended to log segments
	WALFlushes     atomic.Uint64 // batch flushes (one fsync each)
	WALCheckpoints atomic.Uint64 // checkpoints written
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Starts         uint64
	Commits        uint64
	UserAborts     uint64
	AbortsConflict uint64
	AbortsCapacity uint64
	AbortsSyscall  uint64
	Retries        uint64
	Extensions     uint64
	Serializations uint64
	SerialRuns     uint64
	QuiesceWaits   uint64
	QuiesceNanos   uint64
	DeferredOps    uint64
	DeferredFrees  uint64
	InjectedFaults uint64
	WALRecords     uint64
	WALFlushes     uint64
	WALCheckpoints uint64
}

// Stats returns a pointer to the live counters (for incrementing by
// cooperating packages such as core and mempool).
func (rt *Runtime) Stats() *Stats { return &rt.stats }

// Snapshot copies the current counter values.
func (rt *Runtime) Snapshot() StatsSnapshot {
	s := &rt.stats
	return StatsSnapshot{
		Starts:         s.Starts.Load(),
		Commits:        s.Commits.Load(),
		UserAborts:     s.UserAborts.Load(),
		AbortsConflict: s.AbortsConflict.Load(),
		AbortsCapacity: s.AbortsCapacity.Load(),
		AbortsSyscall:  s.AbortsSyscall.Load(),
		Retries:        s.Retries.Load(),
		Extensions:     s.Extensions.Load(),
		Serializations: s.Serializations.Load(),
		SerialRuns:     s.SerialRuns.Load(),
		QuiesceWaits:   s.QuiesceWaits.Load(),
		QuiesceNanos:   s.QuiesceNanos.Load(),
		DeferredOps:    s.DeferredOps.Load(),
		DeferredFrees:  s.DeferredFrees.Load(),
		InjectedFaults: s.InjectedFaults.Load(),
		WALRecords:     s.WALRecords.Load(),
		WALFlushes:     s.WALFlushes.Load(),
		WALCheckpoints: s.WALCheckpoints.Load(),
	}
}

// Delta returns the per-field difference s - prev: the counter activity of
// the interval between the two snapshots. It is the canonical way to report
// per-workload or per-phase statistics (cmd/stmtorture, cmd/kvbench).
func (s StatsSnapshot) Delta(prev StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Starts:         s.Starts - prev.Starts,
		Commits:        s.Commits - prev.Commits,
		UserAborts:     s.UserAborts - prev.UserAborts,
		AbortsConflict: s.AbortsConflict - prev.AbortsConflict,
		AbortsCapacity: s.AbortsCapacity - prev.AbortsCapacity,
		AbortsSyscall:  s.AbortsSyscall - prev.AbortsSyscall,
		Retries:        s.Retries - prev.Retries,
		Extensions:     s.Extensions - prev.Extensions,
		Serializations: s.Serializations - prev.Serializations,
		SerialRuns:     s.SerialRuns - prev.SerialRuns,
		QuiesceWaits:   s.QuiesceWaits - prev.QuiesceWaits,
		QuiesceNanos:   s.QuiesceNanos - prev.QuiesceNanos,
		DeferredOps:    s.DeferredOps - prev.DeferredOps,
		DeferredFrees:  s.DeferredFrees - prev.DeferredFrees,
		InjectedFaults: s.InjectedFaults - prev.InjectedFaults,
		WALRecords:     s.WALRecords - prev.WALRecords,
		WALFlushes:     s.WALFlushes - prev.WALFlushes,
		WALCheckpoints: s.WALCheckpoints - prev.WALCheckpoints,
	}
}

// Sub is a deprecated alias for Delta.
func (s StatsSnapshot) Sub(prev StatsSnapshot) StatsSnapshot { return s.Delta(prev) }

// Aborts returns the total number of aborted attempts of all kinds
// (excluding user aborts, which are final).
func (s StatsSnapshot) Aborts() uint64 {
	return s.AbortsConflict + s.AbortsCapacity + s.AbortsSyscall
}

func (s StatsSnapshot) String() string {
	base := fmt.Sprintf(
		"commits=%d aborts(conflict=%d capacity=%d syscall=%d) retries=%d serializations=%d serialRuns=%d quiesce(waits=%d ms=%.1f) deferred(ops=%d frees=%d) injected=%d",
		s.Commits, s.AbortsConflict, s.AbortsCapacity, s.AbortsSyscall,
		s.Retries, s.Serializations, s.SerialRuns,
		s.QuiesceWaits, float64(s.QuiesceNanos)/1e6,
		s.DeferredOps, s.DeferredFrees, s.InjectedFaults)
	if s.WALRecords != 0 || s.WALFlushes != 0 || s.WALCheckpoints != 0 {
		base += fmt.Sprintf(" wal(records=%d flushes=%d ckpts=%d)",
			s.WALRecords, s.WALFlushes, s.WALCheckpoints)
	}
	return base
}
