package stm

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// The runtime's monotonic event counters are striped: every logical
// counter is spread over a power-of-two number of cache-line-padded
// shards, and an increment touches only the calling goroutine's shard.
// Before striping, every transaction bumped Starts/Commits/abort
// counters in one shared block of atomic words, so committers on
// different CPUs invalidated each other's counter lines on every
// transaction — pure bookkeeping true-sharing on the hottest path.
// Reads (Snapshot, Counter.Load) sum all shards, so counter values
// stay exact; only the memory location of each increment changed.
//
// Counter indices into a shard. Keep this list, the counterSlots
// wiring in Stats.init, and StatsSnapshot in sync.
const (
	cStarts = iota
	cCommits
	cUserAborts
	cAbortsConflict
	cAbortsCapacity
	cAbortsSyscall
	cRetries
	cRetryParks
	cRetryWakes
	cExtensions
	cSerializations
	cSerialRuns
	cQuiesceWaits
	cQuiesceNanos
	cDeferredOps
	cDeferredFrees
	cInjectedFaults
	cWALRecords
	cWALFlushes
	cWALFsyncs
	cWALCheckpoints
	cSnapshots
	cSnapshotReads
	cSnapshotFallbacks
	cSnapshotTruncations
	nStatCounters
)

// statShard holds one stripe of every counter. Shards are padded to a
// 64-byte multiple with at least one pad byte, so two shards never
// share a cache line; counters within one shard may share lines, but
// one shard is (statistically) written by one goroutine. The padding
// expression deliberately yields a full line (64, not 0) when the
// counter payload is itself an exact multiple of 64 bytes — the
// previous `(64 - x%64) % 64` form collapsed to zero padding in that
// case, making the last counter of one shard and the first counter of
// the next share a line. See TestStatShardLayout.
type statShard struct {
	c [nStatCounters]atomic.Uint64
	_ [64 - (nStatCounters*8)%64]byte
}

// Counter is one striped runtime counter. It keeps the incrementing
// API the unpadded atomic fields had (`rt.Stats().Commits.Add(1)`),
// so cooperating packages (core, mempool, wal) did not change. The
// zero Counter is invalid; counters live inside a Runtime's Stats.
type Counter struct {
	s *Stats
	i uint32
}

// Add increments the counter by n on the calling goroutine's stripe.
func (c Counter) Add(n uint64) {
	s := c.s
	s.shards[stripeIdx()&s.mask].c[c.i].Add(n)
}

// Load returns the counter's exact current value (the sum over all
// stripes).
func (c Counter) Load() uint64 {
	s := c.s
	var t uint64
	for i := range s.shards {
		t += s.shards[i].c[c.i].Load()
	}
	return t
}

// stripeIdx derives a goroutine-affine stripe hint from the address of
// a stack variable: distinct goroutines run on distinct stacks, so the
// mixed address separates concurrent committers without runtime
// support (no procPin, no goroutine IDs). The value is stable within a
// call frame and merely *tends* to differ across goroutines — any
// distribution is correct, only contention varies.
func stripeIdx() uint32 {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return uint32((uint64(p) * 0x9e3779b97f4a7c15) >> 33)
}

// Stats holds the runtime's monotonic event counters. All counters are
// updated atomically; Snapshot produces a consistent-enough copy for
// reporting (individual counters are exact; cross-counter skew is
// bounded by in-flight transactions).
type Stats struct {
	shards []statShard
	mask   uint32

	Starts         Counter // transaction attempts begun
	Commits        Counter // top-level commits (incl. serial)
	UserAborts     Counter // fn returned a non-nil error
	AbortsConflict Counter // validation / lock-acquire conflicts
	AbortsCapacity Counter // simulated HTM footprint overflow
	AbortsSyscall  Counter // irrevocability requested under HTM
	Retries        Counter // explicit Retry calls (condition sync)
	RetryParks     Counter // retries that parked on watchers (watch.go)
	RetryWakes     Counter // parked retries woken by a writing commit
	Extensions     Counter // successful read-version extensions
	Serializations Counter // escalations to serial mode
	SerialRuns     Counter // serial-mode executions (incl. AtomicSerial)
	QuiesceWaits   Counter // quiesce calls that actually waited
	QuiesceNanos   Counter // total nanoseconds spent waiting in quiesce
	DeferredOps    Counter // AfterCommit hooks executed (set by core)
	DeferredFrees  Counter // QueueFree actions executed (set by mempool)
	InjectedFaults Counter // faults fired by Config.Inject

	// WAL counters, incremented by package wal. A "flush" is one drain
	// of the log's batch queue followed by one fsync; WALRecords /
	// WALFlushes is therefore the mean group-commit batch size. The
	// striping preserves exactness (Load sums every stripe), so the
	// group-commit batch-size arithmetic in cmd/kvbench is unchanged.
	WALRecords     Counter // records appended to log segments
	WALFlushes     Counter // batch flushes (one fsync each)
	WALFsyncs      Counter // every fsync issued (flushes + rotations + checkpoints)
	WALCheckpoints Counter // checkpoints written

	// Snapshot-mode counters (snapshot.go). SnapshotFallbacks counts
	// snapshot attempts that re-ran on the validating path (chain
	// overflow or Retry at a pinned timestamp); SnapshotTruncations
	// counts version-chain nodes the depth bound dropped while some
	// registered snapshot could still have needed them.
	Snapshots           Counter // committed snapshot-mode transactions
	SnapshotReads       Counter // reads resolved at a pinned version
	SnapshotFallbacks   Counter // snapshot attempts that fell back
	SnapshotTruncations Counter // still-needed chain nodes depth-dropped
}

// init sizes the stripe array and wires every Counter field to its
// slot. Called once from New, before the Runtime is shared.
//
// Stripes are sized from the machine's CPU count, not GOMAXPROCS:
// hardware parallelism bounds how many increments can truly race, and
// GOMAXPROCS is both mutable after New (a runtime built under
// GOMAXPROCS(1) would keep 4 stripes forever) and routinely lowered by
// benchmarks without any intent to shrink counter striping. The count
// is floored at 4 and capped at 64 stripes: beyond 64, the per-read
// merge cost (Snapshot sums every stripe) outgrows any contention
// relief more CPUs could buy on pure counter increments.
func (s *Stats) init() {
	stripes := 2 * runtime.NumCPU()
	if stripes < 4 {
		stripes = 4
	}
	if stripes > 64 {
		stripes = 64
	}
	// Round up to a power of two for mask indexing.
	p := 1
	for p < stripes {
		p <<= 1
	}
	s.shards = make([]statShard, p)
	s.mask = uint32(p - 1)
	counterSlots := [nStatCounters]*Counter{
		cStarts:              &s.Starts,
		cCommits:             &s.Commits,
		cUserAborts:          &s.UserAborts,
		cAbortsConflict:      &s.AbortsConflict,
		cAbortsCapacity:      &s.AbortsCapacity,
		cAbortsSyscall:       &s.AbortsSyscall,
		cRetries:             &s.Retries,
		cRetryParks:          &s.RetryParks,
		cRetryWakes:          &s.RetryWakes,
		cExtensions:          &s.Extensions,
		cSerializations:      &s.Serializations,
		cSerialRuns:          &s.SerialRuns,
		cQuiesceWaits:        &s.QuiesceWaits,
		cQuiesceNanos:        &s.QuiesceNanos,
		cDeferredOps:         &s.DeferredOps,
		cDeferredFrees:       &s.DeferredFrees,
		cInjectedFaults:      &s.InjectedFaults,
		cWALRecords:          &s.WALRecords,
		cWALFlushes:          &s.WALFlushes,
		cWALFsyncs:           &s.WALFsyncs,
		cWALCheckpoints:      &s.WALCheckpoints,
		cSnapshots:           &s.Snapshots,
		cSnapshotReads:       &s.SnapshotReads,
		cSnapshotFallbacks:   &s.SnapshotFallbacks,
		cSnapshotTruncations: &s.SnapshotTruncations,
	}
	for i, c := range counterSlots {
		*c = Counter{s: s, i: uint32(i)}
	}
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Starts         uint64
	Commits        uint64
	UserAborts     uint64
	AbortsConflict uint64
	AbortsCapacity uint64
	AbortsSyscall  uint64
	Retries        uint64
	RetryParks     uint64
	RetryWakes     uint64
	Extensions     uint64
	Serializations uint64
	SerialRuns     uint64
	QuiesceWaits   uint64
	QuiesceNanos   uint64
	DeferredOps    uint64
	DeferredFrees  uint64
	InjectedFaults uint64
	WALRecords     uint64
	WALFlushes     uint64
	WALFsyncs      uint64
	WALCheckpoints uint64

	Snapshots           uint64
	SnapshotReads       uint64
	SnapshotFallbacks   uint64
	SnapshotTruncations uint64
}

// Stats returns a pointer to the live counters (for incrementing by
// cooperating packages such as core and mempool).
func (rt *Runtime) Stats() *Stats { return &rt.stats }

// Snapshot copies the current counter values, summing every stripe in
// one pass over the shard array.
func (rt *Runtime) Snapshot() StatsSnapshot {
	s := &rt.stats
	var t [nStatCounters]uint64
	for i := range s.shards {
		sh := &s.shards[i]
		for j := 0; j < nStatCounters; j++ {
			t[j] += sh.c[j].Load()
		}
	}
	return StatsSnapshot{
		Starts:         t[cStarts],
		Commits:        t[cCommits],
		UserAborts:     t[cUserAborts],
		AbortsConflict: t[cAbortsConflict],
		AbortsCapacity: t[cAbortsCapacity],
		AbortsSyscall:  t[cAbortsSyscall],
		Retries:        t[cRetries],
		RetryParks:     t[cRetryParks],
		RetryWakes:     t[cRetryWakes],
		Extensions:     t[cExtensions],
		Serializations: t[cSerializations],
		SerialRuns:     t[cSerialRuns],
		QuiesceWaits:   t[cQuiesceWaits],
		QuiesceNanos:   t[cQuiesceNanos],
		DeferredOps:    t[cDeferredOps],
		DeferredFrees:  t[cDeferredFrees],
		InjectedFaults: t[cInjectedFaults],
		WALRecords:     t[cWALRecords],
		WALFlushes:     t[cWALFlushes],
		WALFsyncs:      t[cWALFsyncs],
		WALCheckpoints: t[cWALCheckpoints],

		Snapshots:           t[cSnapshots],
		SnapshotReads:       t[cSnapshotReads],
		SnapshotFallbacks:   t[cSnapshotFallbacks],
		SnapshotTruncations: t[cSnapshotTruncations],
	}
}

// Delta returns the per-field difference s - prev: the counter activity of
// the interval between the two snapshots. It is the canonical way to report
// per-workload or per-phase statistics (cmd/stmtorture, cmd/kvbench).
func (s StatsSnapshot) Delta(prev StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Starts:         s.Starts - prev.Starts,
		Commits:        s.Commits - prev.Commits,
		UserAborts:     s.UserAborts - prev.UserAborts,
		AbortsConflict: s.AbortsConflict - prev.AbortsConflict,
		AbortsCapacity: s.AbortsCapacity - prev.AbortsCapacity,
		AbortsSyscall:  s.AbortsSyscall - prev.AbortsSyscall,
		Retries:        s.Retries - prev.Retries,
		RetryParks:     s.RetryParks - prev.RetryParks,
		RetryWakes:     s.RetryWakes - prev.RetryWakes,
		Extensions:     s.Extensions - prev.Extensions,
		Serializations: s.Serializations - prev.Serializations,
		SerialRuns:     s.SerialRuns - prev.SerialRuns,
		QuiesceWaits:   s.QuiesceWaits - prev.QuiesceWaits,
		QuiesceNanos:   s.QuiesceNanos - prev.QuiesceNanos,
		DeferredOps:    s.DeferredOps - prev.DeferredOps,
		DeferredFrees:  s.DeferredFrees - prev.DeferredFrees,
		InjectedFaults: s.InjectedFaults - prev.InjectedFaults,
		WALRecords:     s.WALRecords - prev.WALRecords,
		WALFlushes:     s.WALFlushes - prev.WALFlushes,
		WALFsyncs:      s.WALFsyncs - prev.WALFsyncs,
		WALCheckpoints: s.WALCheckpoints - prev.WALCheckpoints,

		Snapshots:           s.Snapshots - prev.Snapshots,
		SnapshotReads:       s.SnapshotReads - prev.SnapshotReads,
		SnapshotFallbacks:   s.SnapshotFallbacks - prev.SnapshotFallbacks,
		SnapshotTruncations: s.SnapshotTruncations - prev.SnapshotTruncations,
	}
}

// Sub is a deprecated alias for Delta.
func (s StatsSnapshot) Sub(prev StatsSnapshot) StatsSnapshot { return s.Delta(prev) }

// Aborts returns the total number of aborted attempts of all kinds
// (excluding user aborts, which are final).
func (s StatsSnapshot) Aborts() uint64 {
	return s.AbortsConflict + s.AbortsCapacity + s.AbortsSyscall
}

func (s StatsSnapshot) String() string {
	base := fmt.Sprintf(
		"commits=%d aborts(conflict=%d capacity=%d syscall=%d) retries=%d serializations=%d serialRuns=%d quiesce(waits=%d ms=%.1f) deferred(ops=%d frees=%d) injected=%d",
		s.Commits, s.AbortsConflict, s.AbortsCapacity, s.AbortsSyscall,
		s.Retries, s.Serializations, s.SerialRuns,
		s.QuiesceWaits, float64(s.QuiesceNanos)/1e6,
		s.DeferredOps, s.DeferredFrees, s.InjectedFaults)
	if s.RetryParks != 0 || s.RetryWakes != 0 {
		base += fmt.Sprintf(" retryPark(parks=%d wakes=%d)",
			s.RetryParks, s.RetryWakes)
	}
	if s.Snapshots != 0 || s.SnapshotFallbacks != 0 {
		base += fmt.Sprintf(" snapshot(txs=%d reads=%d fallbacks=%d truncations=%d)",
			s.Snapshots, s.SnapshotReads, s.SnapshotFallbacks, s.SnapshotTruncations)
	}
	if s.WALRecords != 0 || s.WALFlushes != 0 || s.WALCheckpoints != 0 {
		base += fmt.Sprintf(" wal(records=%d flushes=%d fsyncs=%d ckpts=%d)",
			s.WALRecords, s.WALFlushes, s.WALFsyncs, s.WALCheckpoints)
	}
	return base
}
