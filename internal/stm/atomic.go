package stm

import (
	"context"
	"runtime"
	"time"
)

// Atomic executes fn as a transaction and blocks until it commits or fn
// returns a non-nil error (which aborts the transaction and is returned).
// fn may be executed multiple times; it must be safe to re-execute and must
// confine its side effects to Vars, AfterCommit hooks, and QueueFree
// actions, all of which are discarded on abort.
//
// The transaction is assigned a fresh lock-owner identity; use AtomicAs to
// supply one (e.g. to reenter transaction-friendly locks held across
// transactions).
//
// Do not call Atomic from inside a transaction on the same goroutine: a
// nested writer's commit would quiesce waiting for the enclosing
// transaction and deadlock. Use (*Tx).Nested for flat nesting, exactly as
// C++ TM flattens nested atomic blocks.
func (rt *Runtime) Atomic(fn func(tx *Tx) error) error {
	return rt.run(nil, rt.NewOwner(), fn, false, false)
}

// AtomicAs is Atomic with an explicit lock-owner identity.
func (rt *Runtime) AtomicAs(owner OwnerID, fn func(tx *Tx) error) error {
	return rt.run(nil, owner, fn, false, false)
}

// AtomicSerial executes fn as a serial (irrevocable) transaction: it waits
// for every in-flight transaction to finish, blocks new ones from starting,
// and then runs alone. This models a C++ TM `synchronized` block that the
// runtime knows will perform an unsafe operation — per the paper's Section
// 6.1, GCC "serializes early and avoids instrumentation" for these. fn may
// safely perform I/O and other irrevocable actions. It still executes at
// most once per call: a non-nil error aborts (buffered writes are
// discarded) and is returned.
func (rt *Runtime) AtomicSerial(fn func(tx *Tx) error) error {
	return rt.run(nil, rt.NewOwner(), fn, true, false)
}

// AtomicSerialAs is AtomicSerial with an explicit lock-owner identity.
func (rt *Runtime) AtomicSerialAs(owner OwnerID, fn func(tx *Tx) error) error {
	return rt.run(nil, owner, fn, true, false)
}

// run is the shared transaction loop. ctx may be nil (the non-Ctx entry
// points), which costs the hot path nothing but a nil test. A non-nil
// ctx is consulted only at attempt boundaries and while parked in Retry:
// fn is never interrupted mid-execution, and a transaction that has
// committed is reported committed even if ctx expired concurrently.
func (rt *Runtime) run(ctx context.Context, owner OwnerID, fn func(tx *Tx) error, startSerial, startSnapshot bool) error {
	met := rt.met.Load()
	var t0 time.Time
	if met != nil {
		t0 = time.Now()
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	tx := rt.txPool.Get().(*Tx)
	tx.owner = owner
	tx.attempts = 0
	serialNext := startSerial
	snapNext := startSnapshot

	for {
		tx.attempts++
		rt.stats.Starts.Add(1)

		// A snapshot call stays read-only even on the fallback paths,
		// so Set fails identically whether or not the snapshot fell
		// back (reset clears the flag between attempts).
		tx.ro = startSnapshot

		var outcome txOutcome
		switch {
		case snapNext:
			outcome = rt.runSnapshot(tx, fn)
		case serialNext:
			outcome = rt.runSerial(tx, fn)
		default:
			outcome = rt.runOptimistic(tx, fn)
		}

		if outcome.committed || outcome.userErr != nil {
			if outcome.userErr != nil {
				rt.stats.UserAborts.Add(1)
				if rt.rec != nil {
					rt.recEvent(Event{Kind: EvAbort, TxID: tx.id, Owner: tx.owner, Aux: AbortCauseUser})
				}
				tx.reset()
				rt.txPool.Put(tx)
				return outcome.userErr
			}
			// Post-commit pipeline (Listing 1's TxEnd tail): move the
			// deferred operations and the free list into locals, reset
			// the descriptor so hooks can start fresh transactions,
			// then run hooks in order, then reclaim.
			hooks := tx.hooks
			frees := tx.frees
			tx.hooks, tx.frees = nil, nil
			tx.reset()
			rt.txPool.Put(tx)
			rt.stats.Commits.Add(1)
			if met != nil {
				// Commit latency stops here, before the deferred tail:
				// the hooks are exactly the work the paper moved out of
				// the caller-visible critical window.
				met.TxLatency.Observe(time.Since(t0))
				met.DeferDepth.Add(int64(len(hooks)))
			}
			// Injected stall in the commit→λ window: deferral locks are
			// held but the deferred operations have not yet run.
			if len(hooks) > 0 && rt.inj.stallPreHook() {
				rt.stats.InjectedFaults.Add(1)
			}
			for _, h := range hooks {
				if met != nil {
					h0 := time.Now()
					h()
					met.DeferExec.Observe(time.Since(h0))
					met.DeferDepth.Add(-1)
				} else {
					h()
				}
			}
			for _, f := range frees {
				f()
			}
			return nil
		}

		// Aborted: decide what to do before re-executing.
		if rt.rec != nil {
			rt.recEvent(Event{Kind: EvAbort, TxID: tx.id, Owner: tx.owner,
				Aux: uint64(outcome.sig.reason)})
		}
		switch outcome.sig.reason {
		case abortExplicitRetry:
			if err := rt.waitForRetry(ctx, tx); err != nil {
				tx.reset()
				rt.txPool.Put(tx)
				return err
			}
			serialNext = false // a serial Retry re-runs optimistically
			tx.attempts = 0    // condition waits don't count as contention
		case abortEscalate:
			serialNext = true
			rt.stats.Serializations.Add(1)
		case abortSnapshot:
			// The snapshot read outran the bounded version chain (or fn
			// called Retry at a pinned timestamp that will never
			// change): fall back to the validating read-only path. Not
			// a contention abort — no backoff, no serialization
			// pressure.
			snapNext = false
			tx.attempts = 0
			rt.stats.SnapshotFallbacks.Add(1)
		default: // conflict, capacity, syscall
			if tx.attempts >= rt.cfg.SerializeAfter {
				serialNext = true
				rt.stats.Serializations.Add(1)
			} else if met != nil {
				b0 := time.Now()
				tx.backoff()
				met.Backoff.Observe(time.Since(b0))
			} else {
				tx.backoff()
			}
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					tx.reset()
					rt.txPool.Put(tx)
					return err
				}
			}
		}
		tx.reset()
	}
}

type txOutcome struct {
	committed bool
	userErr   error
	sig       txSignal
}

// runOptimistic executes one attempt on the speculative (STM or simulated
// HTM) path.
func (rt *Runtime) runOptimistic(tx *Tx, fn func(tx *Tx) error) (out txOutcome) {
	idx, rv := rt.beginSlot()
	tx.rv = rv
	tx.slotIdx = idx
	tx.active = true
	tx.htm = rt.cfg.Mode == ModeHTM
	tx.slow = tx.htm || rt.rec != nil
	if rt.rec != nil {
		tx.beginRecord(rv, 0)
	}

	defer func() {
		tx.active = false
		if r := recover(); r != nil {
			rt.releaseSlot(idx)
			if sig, ok := r.(txSignal); ok {
				out = txOutcome{sig: sig}
				return
			}
			// A user panic escaped the transaction: clean up runtime
			// state and propagate.
			tx.reset()
			panic(r)
		}
	}()

	err := fn(tx)
	if err != nil {
		rt.releaseSlot(idx)
		return txOutcome{userErr: err}
	}

	wv, ok := tx.commitWriteBack()
	if !ok {
		rt.releaseSlot(idx)
		rt.stats.AbortsConflict.Add(1)
		return txOutcome{sig: txSignal{abortConflict}}
	}
	tx.active = false

	// Deregister before quiescing: once published we read nothing more,
	// and two concurrent committers must not wait on each other's slots.
	rt.releaseSlot(idx)
	if wv != 0 {
		// Hardware TM commits atomically in the cache hierarchy and is
		// privatization-safe; only the software path quiesces
		// (Listing 1: "STM-only: ensure transaction finishes before λs
		// run").
		if !tx.htm {
			if rt.rec != nil {
				rt.recEvent(Event{Kind: EvQuiesceStart, TxID: tx.id, Owner: tx.owner, Ver: wv})
			}
			rt.quiesce(wv, -1)
			if rt.rec != nil {
				rt.recEvent(Event{Kind: EvQuiesceEnd, TxID: tx.id, Owner: tx.owner, Ver: wv})
			}
		}
	}
	return txOutcome{committed: true}
}

// beginSlot registers the beginning transaction in the active registry and
// returns (slot index, read version). The read version is sampled
// immediately before activation so quiescing writers never miss us.
func (rt *Runtime) beginSlot() (int, uint64) {
	rv := rt.clock.Load()
	idx := rt.acquireSlot(rv)
	return idx, rv
}

// commitWriteBack performs TL2 commit: lock the write set in global (var
// ID) order, increment the clock, validate the read set, publish, release.
// It returns the write version (0 for read-only transactions) and whether
// the commit succeeded.
func (tx *Tx) commitWriteBack() (uint64, bool) {
	if len(tx.writes) == 0 {
		// Read-only: reads were validated incrementally (opacity), so
		// the transaction is serializable at its read version. If it
		// queued hooks or frees, the caller still quiesces at the
		// current clock so those run after all concurrent readers of
		// pre-commit state are done.
		if len(tx.hooks) != 0 || len(tx.frees) != 0 {
			wv := tx.rt.clock.Load()
			tx.flushCommitEvents(0, 0)
			return wv, true
		}
		tx.flushCommitEvents(0, 0)
		return 0, true
	}

	// Injected conflict: behave exactly as if commit-time validation
	// had failed, exercising the abort/backoff/serialization paths.
	if tx.rt.inj.hitConflict() {
		tx.rt.stats.InjectedFaults.Add(1)
		return 0, false
	}

	tx.sortWrites()
	acquired := 0
	for i := range tx.writes {
		e := &tx.writes[i]
		w := e.m.lock.Load()
		if wordLocked(w) || !e.m.lock.CompareAndSwap(w, w|lockedBit) {
			tx.releaseLocks(acquired, 0)
			return 0, false
		}
		e.prevW = w
		e.m.owner.Store(tx)
		acquired++
	}

	wv, own := tx.rt.nextWriteVersion()

	// TL2 fast path: if we won the clock increment ourselves and
	// nothing committed between our begin and that increment, the
	// read set cannot have changed. An adopted timestamp (GV4) means
	// a concurrent writer committed while we held our locks, so the
	// read set must always be revalidated.
	if (!own || wv != tx.rv+1) && !tx.validateReads() {
		tx.releaseLocks(acquired, 0)
		return 0, false
	}

	// Injected write-back delay: hold the commit locks longer before
	// publishing, so concurrent readers collide with the locked window.
	if tx.rt.inj.stallWriteBack() {
		tx.rt.stats.InjectedFaults.Add(1)
	}

	// The truncation horizon and chain depth are loaded once per commit:
	// publish links each superseded value onto its var's version chain
	// when some active snapshot may still need it (see snapshot.go).
	horizon := tx.rt.snapHorizon.Load()
	depth := tx.rt.cfg.SnapshotChainDepth
	var truncated uint64
	for i := range tx.writes {
		e := &tx.writes[i]
		if dropped := e.v.publish(e.pending, wv, horizon, depth); dropped > 0 {
			truncated += uint64(dropped)
			if tx.slow && tx.rt.rec != nil {
				tx.rt.rec.Record(Event{Kind: EvSnapTruncate, TxID: tx.id,
					Owner: tx.owner, Var: e.m.idLoad(), Ver: horizon, Aux: uint64(dropped)})
			}
		}
		e.m.owner.Store(nil)
		e.m.lock.Store(packVersion(wv))
	}
	if truncated > 0 {
		tx.rt.stats.SnapshotTruncations.Add(truncated)
	}
	tx.flushCommitEvents(wv, 0)
	// Injected delay in the publish→wake window: parked readers' data is
	// already new but their wakeup is still pending.
	if tx.rt.inj.stallWake() {
		tx.rt.stats.InjectedFaults.Add(1)
	}
	// Wake retry waiters watching any written var. This runs after every
	// version store above, so a waiter registered too late to be seen
	// here necessarily validates against the new versions and never
	// parks (see watch.go).
	for i := range tx.writes {
		tx.writes[i].m.wakeWatchers()
	}
	return wv, true
}

// releaseLocks rolls back the first n acquired commit locks. If wv is
// nonzero the locks are released at that version (successful path);
// otherwise the pre-lock word is restored (abort path).
func (tx *Tx) releaseLocks(n int, wv uint64) {
	for i := 0; i < n; i++ {
		e := &tx.writes[i]
		e.m.owner.Store(nil)
		if wv != 0 {
			e.m.lock.Store(packVersion(wv))
		} else {
			e.m.lock.Store(e.prevW)
		}
	}
}

// runSerial executes one attempt in serial (irrevocable) mode: drain every
// concurrent transaction, run alone, publish without validation.
func (rt *Runtime) runSerial(tx *Tx, fn func(tx *Tx) error) (out txOutcome) {
	rt.serialMu.Lock()
	blocked := make(chan struct{})
	rt.serialClear.Store(&blocked)
	rt.serialWant.Add(1)
	// Drain: wait until no optimistic transaction is active. New ones are
	// held at beginSlot by serialWant (they block on the serialClear
	// channel, which we close on release).
	for i := range rt.slots {
		spins := 0
		for rt.slots[i].isActive() {
			waitSpin(&spins)
		}
	}
	rt.stats.SerialRuns.Add(1)

	tx.rv = rt.clock.Load()
	tx.slotIdx = -1
	tx.serial = true
	tx.htm = false
	tx.slow = rt.rec != nil
	tx.active = true
	if rt.rec != nil {
		tx.beginRecord(tx.rv, 0)
	}

	release := func() {
		rt.serialWant.Add(-1)
		close(blocked)
		rt.serialMu.Unlock()
	}

	defer func() {
		tx.active = false
		if r := recover(); r != nil {
			release()
			if sig, ok := r.(txSignal); ok {
				// Only Retry can fire in serial mode (capacity and
				// conflict cannot). The gate is released before the
				// caller blocks, so other transactions can commit
				// and wake it.
				out = txOutcome{sig: sig}
				return
			}
			tx.reset()
			panic(r)
		}
	}()

	err := fn(tx)
	if err != nil {
		release()
		return txOutcome{userErr: err}
	}

	var wv uint64
	if len(tx.writes) > 0 {
		wv = tx.rt.clock.Add(1)
		horizon := rt.snapHorizon.Load()
		depth := rt.cfg.SnapshotChainDepth
		var truncated uint64
		for i := range tx.writes {
			e := &tx.writes[i]
			// Serial mode runs alone among transactions holding slots,
			// but snapshot readers hold none and run concurrently: set
			// the lock bit around each var's publish so their
			// spin/double-check protocol sees the store as one atomic
			// version transition, exactly like an optimistic commit.
			w := e.m.lock.Load()
			e.m.lock.Store(w | lockedBit)
			if dropped := e.v.publish(e.pending, wv, horizon, depth); dropped > 0 {
				truncated += uint64(dropped)
				if tx.slow {
					rt.rec.Record(Event{Kind: EvSnapTruncate, TxID: tx.id,
						Owner: tx.owner, Var: e.m.idLoad(), Ver: horizon, Aux: uint64(dropped)})
				}
			}
			e.m.lock.Store(packVersion(wv))
		}
		if truncated > 0 {
			rt.stats.SnapshotTruncations.Add(truncated)
		}
	}
	tx.flushCommitEvents(wv, AuxSerial)
	tx.active = false
	release()
	// Wake watchers after the gate reopens so woken transactions can
	// begin immediately.
	if len(tx.writes) > 0 {
		if rt.inj.stallWake() {
			rt.stats.InjectedFaults.Add(1)
		}
		for i := range tx.writes {
			tx.writes[i].m.wakeWatchers()
		}
	}
	// No quiesce: nothing else was running.
	return txOutcome{committed: true}
}

func (tx *Tx) readSetChanged() bool {
	for i := range tx.reads {
		e := &tx.reads[i]
		if e.m.lock.Load() != e.ver {
			return true
		}
	}
	return false
}

// backoff performs randomized exponential backoff proportional to the
// number of failed attempts.
func (tx *Tx) backoff() {
	shift := tx.attempts
	if shift > 14 {
		shift = 14
	}
	max := uint64(1) << shift
	if m := uint64(tx.rt.cfg.BackoffMaxSpins); max > m {
		max = m
	}
	n := tx.nextRand() % (max + 1)
	for i := uint64(0); i < n; i++ {
		if i%64 == 63 {
			runtime.Gosched()
		} else {
			spinPause()
		}
	}
}
