package stm

import (
	"errors"
	"sync"
	"testing"
)

// allocSink defeats dead-code elimination in the allocation tests.
var allocSink int

// TestSlotHintWrapAround drives the slot-hint counter across the uint64
// wrap boundary. Before the reduce-then-convert fix in acquireSlot,
// int(hint) went negative past 1<<63 and the scan indexed
// rt.slots[negative], faulting every transaction begin from then on.
func TestSlotHintWrapAround(t *testing.T) {
	rt := New(Config{MaxThreads: 3}) // odd size: modulo sign matters
	rt.slotHint.Store(^uint64(0) - 4)
	v := NewVar(0)
	for i := 0; i < 16; i++ {
		if err := rt.Atomic(func(tx *Tx) error {
			v.Set(tx, v.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatalf("atomic %d across hint wrap: %v", i, err)
		}
	}
	if got := v.Load(); got != 16 {
		t.Fatalf("committed %d increments, want 16", got)
	}
	if rt.slotHint.Load() >= ^uint64(0)-16 {
		t.Fatalf("hint did not wrap: %d", rt.slotHint.Load())
	}
}

// TestReadOnlyAtomicAllocFree pins the read-only hot path at zero heap
// allocations per transaction: descriptor from the pool, read set in
// retained slice capacity, striped stats, no commit-time work.
func TestReadOnlyAtomicAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; bound holds only unraced")
	}
	rt := NewDefault()
	var vars [8]*Var[int]
	for i := range vars {
		vars[i] = NewVar(i)
	}
	body := func(tx *Tx) error {
		s := 0
		for _, v := range vars {
			s += v.Get(tx)
		}
		allocSink = s
		return nil
	}
	for i := 0; i < 32; i++ { // warm the descriptor pool and slice capacity
		if err := rt.Atomic(body); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := rt.Atomic(body); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("read-only Atomic allocates %.1f objects/op, want 0", n)
	}
}

// TestSmallWriteAtomicAllocBound pins the small-write hot path at its
// documented bound: one boxed value per Set and nothing else — no write
// map, no sort.Slice closure/interface conversion, no stats shards.
func TestSmallWriteAtomicAllocBound(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; bound holds only unraced")
	}
	rt := NewDefault()
	a, b := NewVar(0), NewVar(0)
	body := func(tx *Tx) error {
		x, y := a.Get(tx), b.Get(tx)
		a.Set(tx, y+1)
		b.Set(tx, x+1)
		return nil
	}
	for i := 0; i < 32; i++ {
		if err := rt.Atomic(body); err != nil {
			t.Fatal(err)
		}
	}
	const boundPerSet = 1 // the *T box Set buffers; see Var.Set
	if n := testing.AllocsPerRun(200, func() {
		if err := rt.Atomic(body); err != nil {
			t.Fatal(err)
		}
	}); n > 2*boundPerSet {
		t.Fatalf("2-write Atomic allocates %.1f objects/op, want <= %d", n, 2*boundPerSet)
	}
}

// TestWriteSetSpillLookup exercises the map spill past smallWriteSet:
// read-after-write and write-after-write must resolve through the
// overflow map exactly as they do through the linear scan.
func TestWriteSetSpillLookup(t *testing.T) {
	rt := NewDefault()
	n := 3*smallWriteSet + 1
	vars := make([]*Var[int], n)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	if err := rt.Atomic(func(tx *Tx) error {
		for i, v := range vars {
			v.Set(tx, i)
		}
		for i, v := range vars { // read-after-write across the spill
			if got := v.Get(tx); got != i {
				t.Errorf("var %d: read %d after write", i, got)
			}
		}
		for i, v := range vars { // overwrite resolves to the same entry
			v.Set(tx, i*10)
		}
		if tx.wmap == nil {
			t.Error("write set did not spill to map")
		}
		if len(tx.writes) != n {
			t.Errorf("write set has %d entries, want %d (overwrites must merge)", len(tx.writes), n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range vars {
		if got := v.Load(); got != i*10 {
			t.Fatalf("var %d committed as %d, want %d", i, got, i*10)
		}
	}
}

// recorderFunc adapts a function to the Recorder interface.
type recorderFunc func(Event)

func (f recorderFunc) Record(ev Event) { f(ev) }

// TestDescriptorHygieneAfterUserAbort aborts a transaction that dirtied
// every pooled descriptor field — spilled write map, post-commit hooks,
// free list, recorded events — and verifies reset scrubbed them all
// before the descriptor went back to the pool. Stale state here shows
// up as cross-transaction corruption only under load, so it is pinned
// white-box.
func TestDescriptorHygieneAfterUserAbort(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	rt := New(Config{Recorder: recorderFunc(func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})})
	vars := make([]*Var[int], 2*smallWriteSet)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	errAbort := errors.New("user abort")
	var captured *Tx
	err := rt.Atomic(func(tx *Tx) error {
		captured = tx
		for i, v := range vars {
			allocSink = v.Get(tx)
			v.Set(tx, i)
		}
		tx.AfterCommit(func() { t.Error("hook ran for an aborted transaction") })
		tx.QueueFree(func() { t.Error("free ran for an aborted transaction") })
		if tx.wmap == nil {
			t.Error("write set should have spilled before the abort")
		}
		return errAbort
	})
	if !errors.Is(err, errAbort) {
		t.Fatalf("Atomic returned %v, want the user abort", err)
	}
	// The descriptor was reset before being pooled; captured still points
	// at it (nothing else runs transactions here, so it is not reused).
	switch {
	case captured.active:
		t.Error("descriptor still active")
	case len(captured.reads) != 0:
		t.Errorf("%d stale reads", len(captured.reads))
	case len(captured.writes) != 0:
		t.Errorf("%d stale writes", len(captured.writes))
	case captured.wmap != nil:
		t.Error("stale write map (fast path not restored)")
	case captured.hooks != nil:
		t.Error("stale post-commit hooks")
	case captured.frees != nil:
		t.Error("stale free list")
	case len(captured.pendEvs) != 0:
		t.Errorf("%d stale pending events", len(captured.pendEvs))
	}
	// Pending events must have been discarded, not flushed: no write or
	// commit events for the aborted attempt.
	mu.Lock()
	for _, ev := range events {
		if ev.Kind == EvWrite || ev.Kind == EvCommit {
			mu.Unlock()
			t.Fatalf("aborted attempt leaked %v into the history", ev.Kind)
		}
	}
	mu.Unlock()
	// And the pooled descriptor must behave like a fresh one.
	if err := rt.Atomic(func(tx *Tx) error {
		vars[0].Set(tx, 99)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := vars[0].Load(); got != 99 {
		t.Fatalf("post-abort commit stored %d, want 99", got)
	}
}
