package stm

import "context"

// Context-aware transaction entry points. Cancellation is observed at
// three places only:
//
//   - before the first attempt (a cancelled context runs nothing),
//   - between attempts, after a conflict abort's backoff (so a
//     transaction stuck in the backoff/serialization escalation loop
//     honors its deadline), and
//   - while blocked in Retry — both parked on watchers and in the
//     serial-mode retry's optimistic re-run. A waiter woken by
//     cancellation unregisters from every watched var before
//     returning, so no watcher entries leak.
//
// fn itself is never interrupted, and a transaction whose commit
// succeeded is reported committed (nil error) even if the context
// expired concurrently: callers never see a "cancelled" result for a
// transaction whose effects are visible.

// AtomicCtx is Atomic with cancellation and deadline support. It
// returns ctx.Err() if ctx is cancelled before the transaction commits.
// A nil ctx behaves exactly like Atomic.
func (rt *Runtime) AtomicCtx(ctx context.Context, fn func(tx *Tx) error) error {
	return rt.run(ctx, rt.NewOwner(), fn, false, false)
}

// AtomicAsCtx is AtomicCtx with an explicit lock-owner identity.
func (rt *Runtime) AtomicAsCtx(ctx context.Context, owner OwnerID, fn func(tx *Tx) error) error {
	return rt.run(ctx, owner, fn, false, false)
}

// AtomicSerialCtx is AtomicSerial with cancellation and deadline
// support. The serial drain itself is not interruptible (it is bounded
// by in-flight transactions finishing), but a Retry raised in serial
// mode re-runs optimistically and honors ctx while parked.
func (rt *Runtime) AtomicSerialCtx(ctx context.Context, fn func(tx *Tx) error) error {
	return rt.run(ctx, rt.NewOwner(), fn, true, false)
}

// AtomicSerialAsCtx is AtomicSerialCtx with an explicit lock-owner
// identity.
func (rt *Runtime) AtomicSerialAsCtx(ctx context.Context, owner OwnerID, fn func(tx *Tx) error) error {
	return rt.run(ctx, owner, fn, true, false)
}

// SnapshotCtx is AtomicSnapshot with cancellation and deadline support:
// a pinned snapshot read of any length whose fallback path (chain
// overflow or Retry) honors ctx between attempts and while parked. The
// snapshot execution itself is never interrupted mid-read.
func (rt *Runtime) SnapshotCtx(ctx context.Context, fn func(tx *Tx) error) error {
	return rt.run(ctx, rt.NewOwner(), fn, false, true)
}

// SnapshotAsCtx is SnapshotCtx with an explicit lock-owner identity.
func (rt *Runtime) SnapshotAsCtx(ctx context.Context, owner OwnerID, fn func(tx *Tx) error) error {
	return rt.run(ctx, owner, fn, false, true)
}
