package stm

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStateIdle(t *testing.T) {
	rt := NewDefault()
	st := rt.State()
	if st.ActiveTxs != 0 || st.SerialPending || st.RetryWaiters != 0 {
		t.Errorf("idle state = %+v", st)
	}
	if st.SerializeAfter != 100 || st.Mode != ModeSTM {
		t.Errorf("config fields = %+v", st)
	}
}

func TestStateSeesActiveTransaction(t *testing.T) {
	rt := NewDefault()
	v := NewVar(0)
	inTx := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = rt.Atomic(func(tx *Tx) error {
			_ = v.Get(tx)
			once.Do(func() { close(inTx) })
			<-release
			return nil
		})
	}()
	<-inTx
	st := rt.State()
	if st.ActiveTxs != 1 {
		t.Errorf("activeTxs = %d, want 1", st.ActiveTxs)
	}
	if len(st.ActiveRVs) != 1 {
		t.Errorf("activeRVs = %v", st.ActiveRVs)
	}
	close(release)
	<-done
}

func TestStateSeesRetryWaiter(t *testing.T) {
	rt := NewDefault()
	flag := NewVar(false)
	go func() {
		_ = rt.Atomic(func(tx *Tx) error {
			if !flag.Get(tx) {
				tx.Retry()
			}
			return nil
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for rt.State().RetryWaiters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("retry waiter never registered")
		}
		time.Sleep(time.Millisecond)
	}
	// Release the waiter so the runtime winds down cleanly.
	_ = rt.Atomic(func(tx *Tx) error {
		flag.Set(tx, true)
		return nil
	})
}

func TestDumpState(t *testing.T) {
	rt := NewDefault()
	v := NewVar(1)
	_ = rt.Atomic(func(tx *Tx) error {
		v.Set(tx, 2)
		return nil
	})
	var sb strings.Builder
	rt.DumpState(&sb)
	out := sb.String()
	for _, want := range []string{"mode=STM", "clock=", "commits=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestActiveRVsSorted(t *testing.T) {
	rt := NewDefault()
	const n = 4
	var once [n]sync.Once
	inTx := make(chan struct{}, n)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := NewVar(0)
			_ = rt.Atomic(func(tx *Tx) error {
				_ = v.Get(tx)
				once[i].Do(func() { inTx <- struct{}{} })
				<-release
				return nil
			})
		}(i)
	}
	for i := 0; i < n; i++ {
		<-inTx
	}
	st := rt.State()
	for i := 1; i < len(st.ActiveRVs); i++ {
		if st.ActiveRVs[i] < st.ActiveRVs[i-1] {
			t.Errorf("ActiveRVs not sorted: %v", st.ActiveRVs)
		}
	}
	close(release)
	wg.Wait()
}
