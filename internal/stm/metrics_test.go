package stm

import (
	"sync"
	"testing"
	"time"
	"unsafe"

	"deferstm/internal/obs"
)

// TestQuiesceNoSpinNotCounted is the regression test for the quiesce
// accounting bug: a committer whose pending snapshot is non-empty but
// whose every snapshotted slot has finished by the first re-poll pass
// never ran waitSpin, so QuiesceWaits/QuiesceNanos must not move. The
// old code started the wait clock on any non-empty snapshot, so this
// test fails on it (QuiesceWaits = 1) and passes on the fix.
func TestQuiesceNoSpinNotCounted(t *testing.T) {
	rt := NewDefault()
	// A transaction registered with read version 1 — quiesce(5) must
	// snapshot it as pending.
	rt.slots[0].activate(1)
	// ...but it finishes in the window between the snapshot pass and
	// the first re-poll, i.e. before any spin could happen.
	rt.quiesceTestHook = func() { rt.slots[0].deactivate() }
	rt.quiesce(5, -1)
	s := rt.Snapshot()
	if s.QuiesceWaits != 0 {
		t.Fatalf("QuiesceWaits = %d after a spin-free quiesce, want 0", s.QuiesceWaits)
	}
	if s.QuiesceNanos != 0 {
		t.Fatalf("QuiesceNanos = %d after a spin-free quiesce, want 0", s.QuiesceNanos)
	}
}

// TestQuiesceRealWaitCounted is the other half of the accounting
// contract: a quiesce that genuinely spins on an unfinished slot counts
// exactly one wait, accumulates nanoseconds, and feeds the QuiesceWait
// histogram.
func TestQuiesceRealWaitCounted(t *testing.T) {
	rt := NewDefault()
	met := NewMetrics(nil)
	rt.SetMetrics(met)
	rt.slots[0].activate(1)
	var wg sync.WaitGroup
	rt.quiesceTestHook = func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(2 * time.Millisecond)
			rt.slots[0].deactivate()
		}()
	}
	rt.quiesce(5, -1)
	wg.Wait()
	s := rt.Snapshot()
	if s.QuiesceWaits != 1 {
		t.Fatalf("QuiesceWaits = %d after a blocking quiesce, want 1", s.QuiesceWaits)
	}
	if s.QuiesceNanos == 0 {
		t.Fatal("QuiesceNanos = 0 after a blocking quiesce")
	}
	if hs := met.QuiesceWait.Snapshot(); hs.Count != 1 || hs.Sum == 0 {
		t.Fatalf("QuiesceWait histogram count=%d sum=%d, want 1 observation with nonzero sum", hs.Count, hs.Sum)
	}
}

// TestStatShardLayout pins the stripe geometry of the stats shards: a
// cache-line multiple with at least one pad byte. The mirror type
// reproduces the exact-multiple-of-8-counters case the old padding
// expression `(64 - x%64) % 64` collapsed to zero padding on.
func TestStatShardLayout(t *testing.T) {
	sz := unsafe.Sizeof(statShard{})
	if sz%64 != 0 {
		t.Errorf("statShard size %d is not a cache-line multiple", sz)
	}
	if sz <= uintptr(nStatCounters*8) {
		t.Errorf("statShard size %d leaves no padding over %d payload bytes", sz, nStatCounters*8)
	}
	// 16 counters = 128 payload bytes, an exact line multiple: the
	// corrected expression must still insert a full line of padding.
	type exactShard struct {
		c [16]uint64
		_ [64 - (16*8)%64]byte
	}
	if got := unsafe.Sizeof(exactShard{}); got != 192 {
		t.Errorf("exact-multiple shard = %d bytes, want 192 (128 payload + 64 pad)", got)
	}
}

// TestMetricsEndToEnd attaches a Metrics set to a live runtime and
// checks the instruments move with the workload: one TxLatency
// observation per successful Atomic, one DeferExec per AfterCommit
// hook, and a defer-depth gauge that returns to zero.
func TestMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	rt := NewDefault()
	rt.SetMetrics(met)
	if rt.Metrics() != met {
		t.Fatal("Metrics() did not return the attached set")
	}

	v := NewVar(0)
	const txs = 50
	hookRuns := 0
	for i := 0; i < txs; i++ {
		if err := rt.Atomic(func(tx *Tx) error {
			v.Set(tx, v.Get(tx)+1)
			tx.AfterCommit(func() { hookRuns++ })
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if hookRuns != txs {
		t.Fatalf("hooks ran %d times, want %d", hookRuns, txs)
	}
	if hs := met.TxLatency.Snapshot(); hs.Count != txs {
		t.Fatalf("TxLatency count = %d, want %d", hs.Count, txs)
	}
	if hs := met.DeferExec.Snapshot(); hs.Count != txs {
		t.Fatalf("DeferExec count = %d, want %d", hs.Count, txs)
	}
	if d := met.DeferDepth.Load(); d != 0 {
		t.Fatalf("DeferDepth = %d after all hooks finished, want 0", d)
	}

	// The registry exposes the histograms and the stats counters.
	RegisterStats(reg, rt.Snapshot)
	snap := reg.Snapshot()
	if _, ok := snap["deferstm_tx_latency_seconds"]; !ok {
		t.Error("registry missing deferstm_tx_latency_seconds")
	}
	if got := snap["deferstm_tx_commits_total"]; got != uint64(txs) {
		t.Errorf("deferstm_tx_commits_total = %v, want %d", got, txs)
	}
}

// TestReadOnlyAtomicAllocFreeWithMetrics extends the hot-path pin: the
// read-only path must stay at zero heap allocations even with a full
// Metrics set attached (time.Now + striped Observe allocate nothing).
func TestReadOnlyAtomicAllocFreeWithMetrics(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; bound holds only unraced")
	}
	rt := NewDefault()
	rt.SetMetrics(NewMetrics(nil))
	var vars [8]*Var[int]
	for i := range vars {
		vars[i] = NewVar(i)
	}
	body := func(tx *Tx) error {
		s := 0
		for _, v := range vars {
			s += v.Get(tx)
		}
		allocSink = s
		return nil
	}
	for i := 0; i < 32; i++ {
		if err := rt.Atomic(body); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := rt.Atomic(body); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("read-only Atomic with metrics allocates %.1f objects/op, want 0", n)
	}
}
