package stm

import (
	"sync/atomic"
)

// A Var's lock word packs a version number and a lock bit:
//
//	word = version<<1 | locked
//
// While locked, the version bits still hold the pre-lock version; the
// owning transaction is recorded in varMeta.owner. Versions are drawn from
// the runtime's global clock.
const lockedBit uint64 = 1

func wordLocked(w uint64) bool    { return w&lockedBit != 0 }
func wordVersion(w uint64) uint64 { return w >> 1 }
func packVersion(v uint64) uint64 { return v << 1 }

var varIDCtr atomic.Uint64

// varMeta is the type-erased portion of a Var: the versioned lock and the
// commit-time owner. It is what read sets, write sets and lock-ordering
// operate on.
type varMeta struct {
	id    uint64 // unique, allocation-ordered; used to sort write sets
	lock  atomic.Uint64
	owner atomic.Pointer[Tx] // non-nil only while locked
	// watch is the lazily installed retry-watcher set (nil until the
	// first retry parks on this var; see watch.go).
	watch atomic.Pointer[watchSet]
	// hist is the var's version chain: superseded values kept for active
	// snapshot readers, newest first (nil while no snapshot needs them;
	// see snapshot.go). Only publishers holding the var's lock bit link
	// or cut nodes; snapshot readers walk it lock-free.
	hist atomic.Pointer[histNode]
}

// txVar is the type-erased interface a Var presents to the commit path.
type txVar interface {
	meta() *varMeta
	// publish stores a pending boxed value (a *T produced by Set) as the
	// committed snapshot, first linking the superseded value onto the
	// version chain when an active snapshot (horizon) may need it. It is
	// only called while the var's lock bit is held by the committing
	// transaction. wv is the commit version, horizon the runtime's
	// snapshot truncation horizon and depth the chain bound, both loaded
	// once per commit; the return value is the number of chain nodes the
	// depth bound truncated away from still-registered snapshots.
	publish(pending any, wv, horizon uint64, depth int) int
}

// Var is a transactional variable holding a value of type T. The committed
// value is an immutable boxed snapshot: transactional writes buffer a new
// box in the transaction's redo log and commit publishes it. All access
// paths are race-free under the Go memory model.
//
// The zero Var is valid and holds the zero value of T.
type Var[T any] struct {
	m   varMeta
	val atomic.Pointer[T]
}

// NewVar creates a Var holding init.
func NewVar[T any](init T) *Var[T] {
	v := &Var[T]{}
	v.m.id = varIDCtr.Add(1)
	v.val.Store(&init)
	return v
}

func (v *Var[T]) meta() *varMeta { return &v.m }

func (v *Var[T]) publish(pending any, wv, horizon uint64, depth int) int {
	dropped := v.pushHist(wv, horizon, depth)
	v.val.Store(pending.(*T))
	return dropped
}

// pushHist links the currently committed value (about to be superseded
// at version wv) onto the version chain, then enforces the horizon and
// depth bounds. Must be called with the var's lock bit held — the
// version bits beneath it still carry the superseded value's commit
// version, and holding it serializes all chain mutation.
func (v *Var[T]) pushHist(wv, horizon uint64, depth int) int {
	if horizon == noSnapshotHorizon || depth <= 0 {
		// No active snapshot anywhere: nobody can ever read the old
		// value again, and any retained chain is garbage — drop it so
		// idle memory is exactly one value per var.
		if v.m.hist.Load() != nil {
			v.m.hist.Store(nil)
		}
		return 0
	}
	if horizon >= wv {
		// Every active snapshot pinned at or after this commit draws
		// its timestamp ≥ wv, so all of them want the NEW value; the
		// superseded one needs no node. (Existing nodes, if any, all
		// have until ≤ wv ≤ horizon and are unreachable, but cutting
		// them here would cost a load on every commit — the next push
		// with horizon < wv trims them.)
		return 0
	}
	n := &histNode{val: v.val.Load(), ver: wordVersion(v.m.lock.Load()), until: wv}
	n.next.Store(v.m.hist.Load())
	v.m.hist.Store(n)
	return trimHist(n, horizon, depth)
}

// trimHist cuts the chain after the last node some active snapshot can
// still need (until > horizon), bounded at depth nodes total. It
// returns how many still-needed nodes the depth bound discarded —
// snapshots old enough to want those will miss and fall back. Cutting
// mutates only a kept node's next pointer (atomically, to nil); a
// reader that already walked past the cut sees immutable, still-correct
// nodes.
func trimHist(head *histNode, horizon uint64, depth int) int {
	kept := 1 // head
	n := head
	for {
		next := n.next.Load()
		if next == nil {
			return 0
		}
		if kept >= depth || next.until <= horizon {
			dropped := 0
			for m := next; m != nil && m.until > horizon; m = m.next.Load() {
				dropped++
			}
			n.next.Store(nil)
			return dropped
		}
		kept++
		n = next
	}
}

// ensureID lazily assigns an ID to zero-value Vars (those not built with
// NewVar). IDs order write-set lock acquisition; a stable nonzero ID is
// required once the var participates in a commit — or in a watcher
// registration, whose recorded event must name the same var a later
// write names (see parkOnReadSet).
func (m *varMeta) ensureID() {
	if atomic.LoadUint64(&m.id) == 0 {
		atomic.CompareAndSwapUint64(&m.id, 0, varIDCtr.Add(1))
	}
}

func (v *Var[T]) ensureID() { v.m.ensureID() }

// idLoad reads the ID with the atomicity ensureID's CAS requires: a
// var shared before its first commit can have its ID assigned by one
// goroutine while another records an event naming it — a plain read
// here is a data race against the (possibly failing) CAS.
func (m *varMeta) idLoad() uint64 { return atomic.LoadUint64(&m.id) }

// ID returns the Var's unique identifier, as used in recorded history
// events (Event.Var), assigning one if the Var has never been written.
func (v *Var[T]) ID() uint64 {
	v.ensureID()
	return atomic.LoadUint64(&v.m.id)
}

// Init sets a Var's value before the Var is shared with other goroutines
// (e.g. in a constructor). It performs no synchronization or version bump;
// using it on a Var concurrently accessed by transactions is a data race —
// use Set or StoreDirect instead.
func (v *Var[T]) Init(x T) { v.val.Store(&x) }

// Get reads the Var inside transaction tx, with TL2 consistency: the value
// returned is guaranteed to belong to a snapshot no newer than the
// transaction's read version (extending the read version when possible).
// Get never returns an inconsistent value; if consistency cannot be
// established the transaction aborts (via panic, caught by Atomic) and
// re-executes.
func (v *Var[T]) Get(tx *Tx) T {
	tx.mustBeActive()
	if len(tx.writes) != 0 {
		if idx := tx.findWrite(&v.m); idx >= 0 {
			return *(tx.writes[idx].pending.(*T))
		}
	}
	if tx.snap {
		return v.snapGet(tx)
	}
	if tx.serial {
		// Serial transactions run alone; direct read.
		p := v.val.Load()
		if p == nil {
			var zero T
			return zero
		}
		return *p
	}
	for {
		w1 := v.m.lock.Load()
		if wordLocked(w1) {
			if v.m.owner.Load() == tx {
				// Only possible during commit write-back, which
				// never calls Get; defensive.
				p := v.val.Load()
				return deref(p)
			}
			tx.abortConflict()
		}
		p := v.val.Load()
		w2 := v.m.lock.Load()
		if w1 != w2 {
			continue // concurrent commit touched v; re-read
		}
		if wordVersion(w1) > tx.rv {
			// The var was committed after we began. Try to extend
			// our read version; abort if our prior reads are stale.
			if !tx.extend() {
				tx.abortConflict()
			}
			continue
		}
		tx.recordRead(&v.m, w1)
		return deref(p)
	}
}

// snapGet resolves a read at the transaction's pinned snapshot version:
// the current value if it is old enough, else the newest version-chain
// entry whose validity window [ver, until) covers the pin. It never
// validates, never extends and never aborts on conflict — a concurrent
// commit's lock bit is only spun through, exactly like Load. If the
// chain was depth-truncated past the pin, it misses and aborts the
// attempt with abortSnapshot, and the Atomic loop re-runs fn on the
// validating read-only path (never a wrong value).
func (v *Var[T]) snapGet(tx *Tx) T {
	sv := tx.rv
	for {
		w1 := v.m.lock.Load()
		if wordLocked(w1) {
			// An in-flight publish may be installing the version the
			// pin needs; wait it out rather than guessing.
			spinPause()
			continue
		}
		if wordVersion(w1) <= sv {
			p := v.val.Load()
			if v.m.lock.Load() != w1 {
				continue // concurrent commit touched v; re-read
			}
			tx.snapRead(&v.m, wordVersion(w1))
			return deref(p)
		}
		// Current value is newer than the pin: resolve through the
		// chain. Having observed the lock word unlocked at a version
		// > sv, every superseding writer's publish — which links the
		// chain node before releasing the lock — is fully visible, so
		// if the committed-at-sv value is retained at all, it is here.
		// Windows descend strictly, so the walk stops at the first node
		// too old to matter.
		for n := v.m.hist.Load(); n != nil; n = n.next.Load() {
			if n.until <= sv {
				break
			}
			if n.ver <= sv {
				tx.snapRead(&v.m, n.ver)
				return deref(n.val.(*T))
			}
		}
		panic(txSignal{abortSnapshot})
	}
}

func deref[T any](p *T) T {
	if p == nil {
		var zero T
		return zero
	}
	return *p
}

// Set buffers a transactional write of x to the Var. The write becomes
// visible to other transactions only if tx commits.
func (v *Var[T]) Set(tx *Tx, x T) {
	tx.mustBeActive()
	if len(tx.writes) != 0 {
		if idx := tx.findWrite(&v.m); idx >= 0 {
			tx.writes[idx].pending = &x
			return
		}
	}
	v.ensureID()
	tx.recordWrite(v, &v.m, &x)
}

// Update applies f to the current value and stores the result, all within
// tx. It is a convenience for read-modify-write.
func (v *Var[T]) Update(tx *Tx, f func(T) T) {
	v.Set(tx, f(v.Get(tx)))
}

// Load returns the committed value without a transaction. The read is an
// atomic snapshot (it spins while a commit holds the var locked), but the
// caller is responsible for privatization safety: per the paper's Section
// 2, non-transactional access is only safe once every transaction that may
// access the var has completed — which is what the runtime's post-commit
// quiescence guarantees for data privatized by a committed transaction.
func (v *Var[T]) Load() T {
	for {
		w1 := v.m.lock.Load()
		if wordLocked(w1) {
			spinPause()
			continue
		}
		p := v.val.Load()
		w2 := v.m.lock.Load()
		if w1 == w2 {
			return deref(p)
		}
	}
}

// StoreDirect publishes x outside any transaction, bumping the var's
// version so that running transactions observe the change and validate
// correctly. It is the primitive deferred operations use to update fields
// of deferrable objects they hold locked: because every transactional
// access to such fields is preceded by a lock subscription, concurrent
// transactions will abort rather than observe an intermediate state, and
// the version bump makes the update visible to TL2 validation immediately.
//
// rt must be the runtime whose transactions access v.
func (v *Var[T]) StoreDirect(rt *Runtime, x T) {
	v.ensureID()
	for {
		w := v.m.lock.Load()
		if wordLocked(w) {
			spinPause()
			continue
		}
		if v.m.lock.CompareAndSwap(w, w|lockedBit) {
			wv := rt.clock.Add(1)
			horizon := rt.snapHorizon.Load()
			if dropped := v.pushHist(wv, horizon, rt.cfg.SnapshotChainDepth); dropped > 0 {
				rt.stats.SnapshotTruncations.Add(uint64(dropped))
				rt.recEvent(Event{Kind: EvSnapTruncate, Var: v.m.idLoad(),
					Ver: horizon, Aux: uint64(dropped)})
			}
			v.val.Store(&x)
			v.m.lock.Store(packVersion(wv))
			rt.recEvent(Event{Kind: EvDirectWrite, Var: v.m.idLoad(), Ver: wv})
			v.m.wakeWatchers()
			return
		}
	}
}

// Version reports the var's current commit version (diagnostics/tests).
func (v *Var[T]) Version() uint64 { return wordVersion(v.m.lock.Load()) }

// Watchers reports how many retry waiters are currently registered on
// the Var (diagnostics and watcher-leak tests; see watch.go).
func (v *Var[T]) Watchers() int {
	if ws := v.m.watch.Load(); ws != nil {
		return int(ws.n.Load())
	}
	return 0
}
