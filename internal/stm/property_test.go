package stm

import (
	"sync"
	"testing"
	"testing/quick"
)

// Property: a sequence of single-threaded transactions over a small var
// array behaves exactly like direct assignment (sequential oracle).
func TestSequentialOracleProperty(t *testing.T) {
	rt := NewDefault()
	f := func(ops []uint16) bool {
		const nVars = 8
		vars := make([]*Var[int], nVars)
		oracle := make([]int, nVars)
		for i := range vars {
			vars[i] = NewVar(0)
		}
		for _, op := range ops {
			src := int(op) % nVars
			dst := int(op>>4) % nVars
			delta := int(op>>8)%64 - 32
			err := rt.Atomic(func(tx *Tx) error {
				v := vars[src].Get(tx)
				vars[dst].Set(tx, v+delta)
				return nil
			})
			if err != nil {
				return false
			}
			oracle[dst] = oracle[src] + delta
		}
		for i := range vars {
			if vars[i].Load() != oracle[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: concurrent random increments across a random number of
// counters always sum to the number of increments (atomicity under
// contention, for both STM and simulated HTM).
func TestConcurrentSumProperty(t *testing.T) {
	for _, mode := range []Mode{ModeSTM, ModeHTM} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			f := func(nVarsRaw, nWorkersRaw uint8, perWorkerRaw uint16) bool {
				nVars := int(nVarsRaw)%6 + 1
				nWorkers := int(nWorkersRaw)%6 + 1
				per := int(perWorkerRaw)%100 + 1
				rt := New(Config{Mode: mode})
				vars := make([]*Var[int], nVars)
				for i := range vars {
					vars[i] = NewVar(0)
				}
				var wg sync.WaitGroup
				for w := 0; w < nWorkers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							idx := (w + i) % nVars
							_ = rt.Atomic(func(tx *Tx) error {
								vars[idx].Set(tx, vars[idx].Get(tx)+1)
								return nil
							})
						}
					}(w)
				}
				wg.Wait()
				total := 0
				for _, v := range vars {
					total += v.Load()
				}
				return total == nWorkers*per
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: transactional swaps of adjacent pairs preserve the multiset
// of values under concurrency (no lost or duplicated values).
func TestSwapMultisetProperty(t *testing.T) {
	f := func(seed uint32) bool {
		const n = 10
		rt := NewDefault()
		vars := make([]*Var[int], n)
		for i := range vars {
			vars[i] = NewVar(i)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := uint64(seed) + uint64(w)*977 + 1
				for i := 0; i < 150; i++ {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					a := int(rng % n)
					b := (a + 1) % n
					_ = rt.Atomic(func(tx *Tx) error {
						x, y := vars[a].Get(tx), vars[b].Get(tx)
						vars[a].Set(tx, y)
						vars[b].Set(tx, x)
						return nil
					})
				}
			}(w)
		}
		wg.Wait()
		seen := make([]bool, n)
		for _, v := range vars {
			x := v.Load()
			if x < 0 || x >= n || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: read-only transactions always observe a consistent snapshot
// (the parity invariant x == y is maintained by writers; readers must
// never see it broken), across random writer counts.
func TestSnapshotConsistencyProperty(t *testing.T) {
	f := func(nWritersRaw uint8) bool {
		nWriters := int(nWritersRaw)%4 + 1
		rt := NewDefault()
		x := NewVar(0)
		y := NewVar(0)
		bad := false
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					var a, b int
					_ = rt.Atomic(func(tx *Tx) error {
						a = x.Get(tx)
						b = y.Get(tx)
						return nil
					})
					if a != b {
						bad = true
						return
					}
				}
			}()
		}
		var writers sync.WaitGroup
		for w := 0; w < nWriters; w++ {
			writers.Add(1)
			go func() {
				defer writers.Done()
				for i := 0; i < 100; i++ {
					_ = rt.Atomic(func(tx *Tx) error {
						v := x.Get(tx) + 1
						x.Set(tx, v)
						y.Set(tx, v)
						return nil
					})
				}
			}()
		}
		writers.Wait()
		close(stop)
		wg.Wait()
		return !bad && x.Load() == y.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
