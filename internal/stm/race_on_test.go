//go:build race

package stm

// raceEnabled reports whether this test binary was built with the race
// detector. Allocation-regression tests skip under it: race
// instrumentation inserts its own heap allocations, so AllocsPerRun
// bounds measured without it do not hold.
const raceEnabled = true
