package stm

import (
	"runtime"
	"sync/atomic"
	"time"
)

// slot is one entry of the active-transaction registry. Its word packs
// (readVersion << 1) | active. Slots are cache-line padded: quiescence
// scans them constantly and begin/end updates them on every transaction.
type slot struct {
	word atomic.Uint64
	_    [7]uint64 // pad to 64 bytes
}

func (s *slot) activate(rv uint64) { s.word.Store(rv<<1 | 1) }
func (s *slot) setRV(rv uint64)    { s.word.Store(rv<<1 | 1) }
func (s *slot) deactivate()        { s.word.Store(0) }
func (s *slot) activeBefore(v uint64) bool {
	w := s.word.Load()
	return w&1 == 1 && w>>1 < v
}
func (s *slot) isActive() bool { return s.word.Load()&1 == 1 }

// acquireSlot claims a free registry slot for a beginning transaction,
// blocking while a serial transaction wants or holds exclusivity. It
// returns the slot index.
func (rt *Runtime) acquireSlot(rv uint64) int {
	n := len(rt.slots)
	// Reduce the uint64 hint before converting: int(hint) is negative
	// once the counter wraps past int64, and a negative start index
	// would fault the slot scan below.
	start := int(rt.slotHint.Add(1) % uint64(n))
	spins := 0
	for {
		if rt.serialWant.Load() != 0 {
			// Block until the serial transaction releases exclusivity
			// (event-driven: the gate closes serialClear on release).
			ch := *rt.serialClear.Load()
			if rt.serialWant.Load() != 0 {
				<-ch
			}
			continue
		}
		for i := 0; i < n; i++ {
			idx := (start + i) % n
			s := &rt.slots[idx]
			if s.word.Load() == 0 && s.word.CompareAndSwap(0, rv<<1|1) {
				// Re-check the serial gate: a serial transaction
				// may have begun draining between our check and
				// the CAS. If so, back out and wait, otherwise a
				// drain could miss us or we could run alongside a
				// serial transaction.
				if rt.serialWant.Load() != 0 {
					s.deactivate()
					break
				}
				return idx
			}
		}
		waitSpin(&spins)
	}
}

func (rt *Runtime) releaseSlot(idx int) {
	rt.slots[idx].deactivate()
}

// quiesce blocks until every transaction that began before version wv has
// completed (committed or aborted, including cleanup). It implements the
// privatization-safety wait of the paper's Section 2: a committed writer
// may have privatized memory, so it must not proceed — and in particular
// must not run deferred operations or reclaim memory — until no concurrent
// transaction can still be reading pre-commit state.
//
// selfIdx is the committer's own slot (skipped); pass -1 if none.
func (rt *Runtime) quiesce(wv uint64, selfIdx int) {
	if rt.cfg.DisableQuiescence {
		return
	}
	// Injected stall inside quiescence: lengthen the privatization wait
	// so deferred operations run later relative to concurrent readers.
	if rt.inj.stallQuiesce() {
		rt.stats.InjectedFaults.Add(1)
	}
	// Snapshot pass: collect the slots that were running a pre-wv
	// transaction at entry. Slots that activate later sample a read
	// version from the already-advanced clock, so only this snapshot
	// can ever block us — the wait loop below re-polls the shrinking
	// snapshot instead of rescanning the whole slot array each spin.
	// The fast path (nothing active) is one scan with no timestamp
	// reads at all.
	var buf [quiesceSnapshotCap]int32
	pending := buf[:0]
	waited := false
	var start time.Time
	for i := range rt.slots {
		if i == selfIdx {
			continue
		}
		s := &rt.slots[i]
		if !s.activeBefore(wv) {
			continue
		}
		if len(pending) < cap(pending) {
			pending = append(pending, int32(i))
			continue
		}
		// Snapshot buffer exhausted (registry far larger than the
		// stack buffer, all busy): wait this slot out in place.
		if !waited {
			waited = true
			start = time.Now()
		}
		spins := 0
		for s.activeBefore(wv) {
			waitSpin(&spins)
		}
	}
	if rt.quiesceTestHook != nil {
		rt.quiesceTestHook()
	}
	// Re-poll the shrinking snapshot. A quiesce counts as a *wait* only
	// once waitSpin actually runs: if every snapshotted slot has already
	// finished by the first re-poll pass (k == 0 immediately), nothing
	// blocked us and QuiesceWaits/QuiesceNanos must not move. The old
	// code started the wait clock on any non-empty snapshot, over-
	// counting exactly those free passes.
	spins := 0
	for len(pending) > 0 {
		k := 0
		for _, idx := range pending {
			if rt.slots[idx].activeBefore(wv) {
				pending[k] = idx
				k++
			}
		}
		pending = pending[:k]
		if k > 0 {
			if !waited {
				waited = true
				start = time.Now()
			}
			waitSpin(&spins)
		}
	}
	if waited {
		d := time.Since(start)
		rt.stats.QuiesceWaits.Add(1)
		rt.stats.QuiesceNanos.Add(uint64(d.Nanoseconds()))
		if met := rt.met.Load(); met != nil {
			met.QuiesceWait.Observe(d)
		}
	}
}

// quiesceSnapshotCap bounds the stack-allocated active-slot snapshot
// in quiesce; registries with more simultaneously active pre-commit
// transactions fall back to in-place waiting for the overflow.
const quiesceSnapshotCap = 128

// waitSpin implements a progressive wait: spin briefly, then yield, then
// sleep. Used for quiescence, serial draining, and slot acquisition.
func waitSpin(spins *int) {
	*spins++
	switch {
	case *spins < 64:
		spinPause()
	case *spins < 256:
		runtime.Gosched()
	default:
		time.Sleep(10 * time.Microsecond)
	}
}

// spinPause is a short busy pause (a stand-in for the PAUSE instruction).
//
//go:noinline
func spinPause() {
	for i := 0; i < 8; i++ {
		_ = i
	}
}
