package stm

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSnapshotPinnedValueBasic: a snapshot transaction keeps observing
// the values committed at its pin even after a writer overwrites them
// mid-scan — the chain-resolved read, not the current value.
func TestSnapshotPinnedValueBasic(t *testing.T) {
	rt := NewDefault()
	a, b := NewVar(0), NewVar(0)
	write := make(chan struct{})
	written := make(chan struct{})
	go func() {
		<-write
		if err := rt.Atomic(func(tx *Tx) error {
			a.Set(tx, 1)
			b.Set(tx, 1)
			return nil
		}); err != nil {
			t.Error(err)
		}
		close(written)
	}()
	first := true
	var gotA, gotB int
	if err := rt.AtomicSnapshot(func(tx *Tx) error {
		gotA = a.Get(tx)
		if first {
			first = false
			close(write)
			<-written
		}
		gotB = b.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if gotA != 0 || gotB != 0 {
		t.Fatalf("snapshot read (%d,%d) across a concurrent commit, want (0,0)", gotA, gotB)
	}
	if a.Load() != 1 || b.Load() != 1 {
		t.Fatalf("writer's commit lost: (%d,%d)", a.Load(), b.Load())
	}
	s := rt.Snapshot()
	if s.Snapshots != 1 || s.SnapshotFallbacks != 0 {
		t.Fatalf("stats: %d snapshots, %d fallbacks; want 1, 0", s.Snapshots, s.SnapshotFallbacks)
	}
	if s.SnapshotReads != 2 {
		t.Fatalf("stats: %d snapshot reads, want 2", s.SnapshotReads)
	}
}

// TestSnapshotOverflowFallback: a reader slower than the chain depth
// triggers the validating fallback — never a wrong value. With depth 1,
// three commits between the pin and the read truncate the version the
// pin needs; the attempt aborts with abortSnapshot and fn re-runs on
// the ordinary read-only path, observing the latest value.
func TestSnapshotOverflowFallback(t *testing.T) {
	rt := New(Config{SnapshotChainDepth: 1})
	a := NewVar(0)
	runs := 0
	var got int
	if err := rt.AtomicSnapshot(func(tx *Tx) error {
		runs++
		if runs == 1 {
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 1; i <= 3; i++ {
					if err := rt.Atomic(func(tx *Tx) error {
						a.Set(tx, i)
						return nil
					}); err != nil {
						t.Error(err)
					}
				}
			}()
			<-done
		}
		got = a.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("fn ran %d times, want 2 (snapshot attempt + fallback)", runs)
	}
	if got != 3 {
		t.Fatalf("fallback read %d, want the latest value 3", got)
	}
	s := rt.Snapshot()
	if s.SnapshotFallbacks != 1 {
		t.Fatalf("stats: %d fallbacks, want 1", s.SnapshotFallbacks)
	}
	if s.Snapshots != 0 {
		t.Fatalf("stats: %d snapshot commits, want 0 (the attempt fell back)", s.Snapshots)
	}
	if s.SnapshotTruncations == 0 {
		t.Fatal("stats: no truncations recorded; the depth bound must have dropped a needed node")
	}
}

// TestSnapshotZeroAbortScanUnderWriters: the headline property — long
// scans over a write-hot keyspace commit in snapshot mode with zero
// aborts and zero fallbacks (the chain is deep enough), and every scan
// observes a consistent cut (writers preserve the bank invariant).
func TestSnapshotZeroAbortScanUnderWriters(t *testing.T) {
	rt := New(Config{SnapshotChainDepth: 4096})
	const nVars, each = 16, 1000
	vars := make([]*Var[int], nVars)
	for i := range vars {
		vars[i] = NewVar(each)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i, j := rng.Intn(nVars), rng.Intn(nVars)
				if i == j {
					continue
				}
				if err := rt.Atomic(func(tx *Tx) error {
					amt := 1 + rng.Intn(5)
					vars[i].Set(tx, vars[i].Get(tx)-amt)
					vars[j].Set(tx, vars[j].Get(tx)+amt)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w) + 42)
	}
	const scans = 200
	for s := 0; s < scans; s++ {
		sum := 0
		if err := rt.AtomicSnapshot(func(tx *Tx) error {
			sum = 0
			for _, v := range vars {
				sum += v.Get(tx)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if sum != nVars*each {
			t.Fatalf("scan %d saw an inconsistent cut: sum %d, want %d", s, sum, nVars*each)
		}
	}
	close(stop)
	wg.Wait()
	st := rt.Snapshot()
	if st.Snapshots != scans {
		t.Fatalf("stats: %d snapshot commits, want %d", st.Snapshots, scans)
	}
	if st.SnapshotFallbacks != 0 {
		t.Fatalf("stats: %d fallbacks under a 4096-deep chain, want 0", st.SnapshotFallbacks)
	}
}

// TestSnapshotTruncationSoak: shallow chains, concurrent snapshots,
// transactional writers, StoreDirect publishers and quiescence all at
// once. Every scan — snapshot-served or fallen back — must still see
// the invariant; run with -race this doubles as the chain-mutation
// memory-model check.
func TestSnapshotTruncationSoak(t *testing.T) {
	rt := New(Config{SnapshotChainDepth: 2})
	const nVars = 8
	vars := make([]*Var[int], nVars)
	var direct Var[int] // StoreDirect target, outside the invariant
	for i := range vars {
		vars[i] = NewVar(100)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i, j := rng.Intn(nVars), (rng.Intn(nVars-1)+1+rng.Intn(nVars))%nVars
				if i == j {
					j = (j + 1) % nVars
				}
				if err := rt.Atomic(func(tx *Tx) error {
					vars[i].Set(tx, vars[i].Get(tx)-1)
					vars[j].Set(tx, vars[j].Get(tx)+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
				direct.StoreDirect(rt, rng.Int())
			}
		}(int64(w) + 7)
	}
	var scanErr atomic.Value
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(150 * time.Millisecond)
			for time.Now().Before(deadline) {
				sum := 0
				if err := rt.AtomicSnapshot(func(tx *Tx) error {
					sum = 0
					for _, v := range vars {
						sum += v.Get(tx)
					}
					_ = direct.Get(tx)
					return nil
				}); err != nil {
					scanErr.Store(err)
					return
				}
				if sum != nVars*100 {
					t.Errorf("inconsistent cut: sum %d, want %d", sum, nVars*100)
					return
				}
			}
		}()
	}
	time.Sleep(160 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := scanErr.Load(); err != nil {
		t.Fatal(err)
	}
	if rt.ActiveSnapshots() != 0 {
		t.Fatalf("%d snapshots still registered after the soak", rt.ActiveSnapshots())
	}
	if h := rt.SnapshotHorizon(); h != ^uint64(0) {
		t.Fatalf("horizon %d after all snapshots ended, want cleared", h)
	}
}

// TestSnapshotRetryFallsBack: Retry inside a snapshot cannot park (the
// pinned world never changes), so it aborts to the validating path,
// where the watcher machinery blocks until the condition holds.
func TestSnapshotRetryFallsBack(t *testing.T) {
	rt := NewDefault()
	flag := NewVar(false)
	go func() {
		time.Sleep(20 * time.Millisecond)
		flag.StoreDirect(rt, true)
	}()
	if err := rt.AtomicSnapshot(func(tx *Tx) error {
		if !flag.Get(tx) {
			tx.Retry()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if s := rt.Snapshot(); s.SnapshotFallbacks != 1 {
		t.Fatalf("stats: %d fallbacks, want 1 (Retry forced the validating path)", s.SnapshotFallbacks)
	}
}

// Mutating entry points panic deterministically inside a snapshot —
// and identically on its fallback attempt, because the transaction
// stays read-only across the mode switch.
func TestSnapshotMutationPanics(t *testing.T) {
	rt := NewDefault()
	v := NewVar(0)
	cases := []struct {
		name string
		body func(tx *Tx)
		want string
	}{
		{"Set", func(tx *Tx) { v.Set(tx, 1) }, "write inside a snapshot"},
		{"AfterCommit", func(tx *Tx) { tx.AfterCommit(func() {}) }, "AfterCommit inside a snapshot"},
		{"QueueFree", func(tx *Tx) { tx.QueueFree(func() {}) }, "QueueFree inside a snapshot"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s inside a snapshot did not panic", c.name)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, c.want) {
					t.Fatalf("panic %v, want message containing %q", r, c.want)
				}
			}()
			_ = rt.AtomicSnapshot(func(tx *Tx) error {
				c.body(tx)
				return nil
			})
		})
	}
}

// TestSnapshotStoreDirectChains: non-transactional StoreDirect
// publishes also link the superseded value for active snapshots.
func TestSnapshotStoreDirectChains(t *testing.T) {
	rt := NewDefault()
	v := NewVar(10)
	first := true
	var got int
	if err := rt.AtomicSnapshot(func(tx *Tx) error {
		if first {
			first = false
			done := make(chan struct{})
			go func() { v.StoreDirect(rt, 20); close(done) }()
			<-done
		}
		got = v.Get(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("snapshot read %d across a StoreDirect, want the pinned 10", got)
	}
	if v.Load() != 20 {
		t.Fatalf("StoreDirect lost: %d", v.Load())
	}
}

// TestSnapshotIdleChainsCleared: once no snapshot is registered, the
// next publish to a var drops its retained chain — idle memory is one
// value per var again.
func TestSnapshotIdleChainsCleared(t *testing.T) {
	rt := NewDefault()
	v := NewVar(0)
	block := make(chan struct{})
	entered := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		first := true
		done <- rt.AtomicSnapshot(func(tx *Tx) error {
			_ = v.Get(tx)
			if first {
				first = false
				close(entered)
				<-block
			}
			return nil
		})
	}()
	<-entered
	for i := 1; i <= 3; i++ {
		if err := rt.Atomic(func(tx *Tx) error {
			v.Set(tx, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if v.m.hist.Load() == nil {
		t.Fatal("no chain retained while a snapshot was registered")
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := rt.Atomic(func(tx *Tx) error {
		v.Set(tx, 99)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.m.hist.Load() != nil {
		t.Fatal("chain not dropped by the first publish after the last snapshot ended")
	}
}

// TestSnapshotSerialWriterVisibility: serial-mode commits publish with
// the lock bit held so concurrent snapshot readers (which bypass the
// serial drain entirely) cannot tear across the multi-var write-back.
func TestSnapshotSerialWriterVisibility(t *testing.T) {
	rt := NewDefault()
	const nVars = 8
	vars := make([]*Var[int], nVars)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 1; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := rt.AtomicSerial(func(tx *Tx) error {
				for _, v := range vars {
					v.Set(tx, round)
				}
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		vals := make([]int, nVars)
		if err := rt.AtomicSnapshot(func(tx *Tx) error {
			for i, v := range vars {
				vals[i] = v.Get(tx)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < nVars; i++ {
			if vals[i] != vals[0] {
				t.Fatalf("torn snapshot across a serial commit: %v", vals)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestReadOnlyAllocFreeAfterSnapshots re-pins the plain read-only hot
// path at zero allocations after snapshot traffic has come and gone:
// chains, the horizon word and the registry must cost the ordinary
// path nothing.
func TestReadOnlyAllocFreeAfterSnapshots(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; bound holds only unraced")
	}
	rt := NewDefault()
	var vars [8]*Var[int]
	for i := range vars {
		vars[i] = NewVar(i)
	}
	body := func(tx *Tx) error {
		s := 0
		for _, v := range vars {
			s += v.Get(tx)
		}
		allocSink = s
		return nil
	}
	for i := 0; i < 8; i++ {
		if err := rt.AtomicSnapshot(body); err != nil {
			t.Fatal(err)
		}
		if err := rt.Atomic(func(tx *Tx) error {
			vars[i%len(vars)].Set(tx, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		if err := rt.Atomic(body); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := rt.Atomic(body); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("read-only Atomic allocates %.1f objects/op after snapshot traffic, want 0", n)
	}
}
