package stm

import (
	"fmt"
	"io"
)

// RuntimeState is a diagnostic snapshot of the runtime's live state, for
// debugging stuck workloads (e.g. a transaction blocked in retry forever,
// or a quiescing writer waiting on a long transaction).
type RuntimeState struct {
	Clock          uint64
	ActiveTxs      int      // registry slots currently active
	ActiveRVs      []uint64 // their begin timestamps (ascending)
	SerialPending  bool     // a serial transaction is pending or running
	RetryWaiters   int64    // goroutines blocked in retry
	MaxThreads     int
	Mode           Mode
	SerializeAfter int
}

// State captures a diagnostic snapshot. It is approximate under
// concurrency (slots are read without stopping the world) but safe to
// call at any time.
func (rt *Runtime) State() RuntimeState {
	st := RuntimeState{
		Clock:          rt.clock.Load(),
		SerialPending:  rt.serialWant.Load() != 0,
		RetryWaiters:   rt.parked.Load(),
		MaxThreads:     rt.cfg.MaxThreads,
		Mode:           rt.cfg.Mode,
		SerializeAfter: rt.cfg.SerializeAfter,
	}
	for i := range rt.slots {
		w := rt.slots[i].word.Load()
		if w&1 == 1 {
			st.ActiveTxs++
			st.ActiveRVs = append(st.ActiveRVs, w>>1)
		}
	}
	// insertion sort: the list is tiny
	for i := 1; i < len(st.ActiveRVs); i++ {
		for j := i; j > 0 && st.ActiveRVs[j] < st.ActiveRVs[j-1]; j-- {
			st.ActiveRVs[j], st.ActiveRVs[j-1] = st.ActiveRVs[j-1], st.ActiveRVs[j]
		}
	}
	return st
}

// DumpState writes a human-readable diagnostic report to w: configuration,
// clock, active transactions, waiters, and the statistics counters.
func (rt *Runtime) DumpState(w io.Writer) {
	st := rt.State()
	fmt.Fprintf(w, "stm runtime: mode=%s maxThreads=%d serializeAfter=%d\n",
		st.Mode, st.MaxThreads, st.SerializeAfter)
	fmt.Fprintf(w, "  clock=%d activeTxs=%d serialPending=%v retryWaiters=%d\n",
		st.Clock, st.ActiveTxs, st.SerialPending, st.RetryWaiters)
	if len(st.ActiveRVs) > 0 {
		fmt.Fprintf(w, "  active begin-timestamps: %v (oldest gates quiescence)\n", st.ActiveRVs)
	}
	fmt.Fprintf(w, "  stats: %s\n", rt.Snapshot().String())
}
