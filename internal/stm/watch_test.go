// Tests for watcher-based retry (watch.go): wake-on-write correctness,
// watcher-registry hygiene, the seeded lost-wakeup property battery, and
// the idle-CPU regression that pins the reason the watcher path exists.
// External test package: the property tests import internal/check and
// internal/history, which depend on this package.
package stm_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deferstm/internal/check"
	"deferstm/internal/ds"
	"deferstm/internal/history"
	"deferstm/internal/stm"
)

// waitParked spins until n transactions are parked on watchers (the
// park transition is quick; a stuck test here means a waiter spun or
// slept instead of parking).
func waitParked(t *testing.T, rt *stm.Runtime, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for rt.RetryParked() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d parked retries (have %d)", n, rt.RetryParked())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestWatcherWakeBasic parks one reader on a var and checks that the
// writer's commit wakes it, that the stats record exactly one
// park/wake pair, and that the watcher registry is empty afterwards.
func TestWatcherWakeBasic(t *testing.T) {
	rt := stm.NewDefault()
	v := stm.NewVar(0)
	got := make(chan int, 1)
	go func() {
		var x int
		_ = rt.Atomic(func(tx *stm.Tx) error {
			x = v.Get(tx)
			if x == 0 {
				tx.Retry()
			}
			return nil
		})
		got <- x
	}()
	waitParked(t, rt, 1)
	if n := v.Watchers(); n != 1 {
		t.Fatalf("parked reader registered %d watchers on v, want 1", n)
	}
	_ = rt.Atomic(func(tx *stm.Tx) error {
		v.Set(tx, 42)
		return nil
	})
	select {
	case x := <-got:
		if x != 42 {
			t.Fatalf("woken reader observed %d, want 42", x)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader never woke after the watched var was written")
	}
	if n := v.Watchers(); n != 0 {
		t.Fatalf("%d watcher entries leaked after wake", n)
	}
	if n := rt.RetryParked(); n != 0 {
		t.Fatalf("RetryParked = %d after wake, want 0", n)
	}
	s := rt.Snapshot()
	if s.RetryParks != 1 || s.RetryWakes != 1 {
		t.Fatalf("parks=%d wakes=%d, want 1/1", s.RetryParks, s.RetryWakes)
	}
}

// TestWatcherWakeOnDirectStore checks the non-transactional publication
// path: StoreDirect must wake parked readers just like a commit.
func TestWatcherWakeOnDirectStore(t *testing.T) {
	rt := stm.NewDefault()
	v := stm.NewVar(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = rt.Atomic(func(tx *stm.Tx) error {
			if v.Get(tx) == 0 {
				tx.Retry()
			}
			return nil
		})
	}()
	waitParked(t, rt, 1)
	v.StoreDirect(rt, 7)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reader never woke after StoreDirect")
	}
}

// TestWatcherMultiVarWake parks a reader whose read set spans several
// vars and wakes it through the *last* var read — registration must
// cover the whole read set, not just the var Retry was decided on.
func TestWatcherMultiVarWake(t *testing.T) {
	rt := stm.NewDefault()
	a, b, c := stm.NewVar(0), stm.NewVar(0), stm.NewVar(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = rt.Atomic(func(tx *stm.Tx) error {
			if a.Get(tx)+b.Get(tx)+c.Get(tx) == 0 {
				tx.Retry()
			}
			return nil
		})
	}()
	waitParked(t, rt, 1)
	for _, v := range []*stm.Var[int]{a, b, c} {
		if n := v.Watchers(); n != 1 {
			t.Fatalf("watcher count on read-set var = %d, want 1", n)
		}
	}
	_ = rt.Atomic(func(tx *stm.Tx) error {
		c.Set(tx, 1)
		return nil
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reader never woke on a write to the last read-set var")
	}
	for _, v := range []*stm.Var[int]{a, b, c} {
		if n := v.Watchers(); n != 0 {
			t.Fatalf("watcher entry leaked on a read-set var: %d", n)
		}
	}
}

// TestWatcherEmptyReadSetRetry pins the degenerate case: a Retry that
// read nothing identifies no commit to wait for, so it must not park
// (nothing could ever wake it) — it spins and re-executes.
func TestWatcherEmptyReadSetRetry(t *testing.T) {
	rt := stm.NewDefault()
	var calls atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = rt.Atomic(func(tx *stm.Tx) error {
			if calls.Add(1) < 10 {
				tx.Retry() // read set is empty: must re-execute, not park
			}
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("empty-read-set retry parked forever")
	}
	if s := rt.Snapshot(); s.RetryParks != 0 {
		t.Fatalf("empty-read-set retry parked %d times, want 0", s.RetryParks)
	}
}

// TestWatcherLostWakeupProperty is the seeded lost-wakeup battery: a
// producer/consumer handoff over a tiny bounded queue where *every*
// operation crosses the register→validate→park→wake protocol, with
// fault injection stalling inside the two windows a lost wakeup would
// hide in (register→park on the waiter side, publish→wake on the
// committer side). A lost wakeup deadlocks the handoff, which the
// 30-second watchdog turns into a failure; with the recorder attached
// the history must additionally satisfy the retry-wakeup rule.
func TestWatcherLostWakeupProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property battery is long under -short")
	}
	for _, recorded := range []bool{false, true} {
		recorded := recorded
		name := "recorder=off"
		if recorded {
			name = "recorder=on"
		}
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 4; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					t.Parallel()
					runLostWakeupMix(t, seed, recorded)
				})
			}
		})
	}
}

func runLostWakeupMix(t *testing.T, seed uint64, recorded bool) {
	t.Helper()
	var log *history.Log
	cfg := stm.Config{
		Inject: &stm.Inject{
			Seed:                  seed,
			RetryRegisterStallPct: 35,
			WakeDelayPct:          35,
			ConflictPct:           10,
			StallSpins:            256,
		},
	}
	if recorded {
		log = history.New()
		cfg.Recorder = log
	}
	rt := stm.New(cfg)
	q := ds.NewBoundedQueue[int](2)

	const producers, consumers, perProducer = 3, 3, 300
	total := producers * perProducer
	// taken is transactional so the exit condition composes with the
	// take: the final take's commit wakes parked consumers, which then
	// observe taken == total and exit — no drain race, no stranded park.
	taken := stm.NewVar(0)
	var consumedSum atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := p*perProducer + i
				_ = rt.Atomic(func(tx *stm.Tx) error {
					q.Put(tx, v)
					return nil
				})
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var v int
				took, done := false, false
				_ = rt.Atomic(func(tx *stm.Tx) error {
					took, done = false, false
					var ok bool
					if v, ok = q.TryTake(tx); ok {
						took = true
						taken.Set(tx, taken.Get(tx)+1)
						return nil
					}
					if taken.Get(tx) >= total {
						done = true
						return nil
					}
					tx.Retry()
					return nil
				})
				if took {
					consumedSum.Add(int64(v))
				}
				if done {
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("seed %d: handoff deadlocked — lost wakeup (parked=%d, consumed=%d/%d)",
			seed, rt.RetryParked(), taken.Load(), total)
	}

	wantSum := int64(total) * int64(total-1) / 2
	if got := taken.Load(); got != total || consumedSum.Load() != wantSum {
		t.Fatalf("seed %d: consumed %d values (sum %d), want %d (sum %d)",
			seed, got, consumedSum.Load(), total, wantSum)
	}
	if n := rt.RetryParked(); n != 0 {
		t.Fatalf("seed %d: %d transactions still parked after drain", seed, n)
	}
	if recorded {
		rep := check.History(log.Events())
		if !rep.OK() {
			t.Fatalf("seed %d: history check failed:\n%s", seed, rep)
		}
		if rep.WatchRegs == 0 || rep.Wakes == 0 {
			t.Fatalf("seed %d: history recorded no watcher traffic (regs=%d wakes=%d) — the workload missed the park path",
				seed, rep.WatchRegs, rep.Wakes)
		}
	}
}

// TestBlockedReadersIdleCPU is the regression test behind the watcher
// rework's acceptance criterion: readers blocked on a var nobody writes
// must consume ~no CPU while unrelated commits proceed. The per-mode
// transaction-start counter is the churn proxy — parked watchers start
// ~0 attempts during the window, the SpinRetry opt-out re-executes
// continuously — and the test asserts a ≥10x ratio between the modes
// plus a hard ceiling on the watcher mode's absolute churn.
func TestBlockedReadersIdleCPU(t *testing.T) {
	const readers = 16
	const window = 200 * time.Millisecond

	churn := func(spin bool) uint64 {
		rt := stm.New(stm.Config{SpinRetry: spin})
		gate := stm.NewVar(0)
		busy := stm.NewVar(0)
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = rt.Atomic(func(tx *stm.Tx) error {
					if gate.Get(tx) == 0 {
						tx.Retry()
					}
					return nil
				})
			}()
		}
		if !spin {
			waitParked(t, rt, readers)
		} else {
			// Spinners never park; give them time to reach steady state.
			time.Sleep(20 * time.Millisecond)
		}
		// A writer on an unrelated var: blocked readers must not care.
		// Throttled to ~1 commit/ms so its own starts stay small next to
		// what 16 spinning readers generate — the quantity under test.
		stop := make(chan struct{})
		var writerWG sync.WaitGroup
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				_ = rt.Atomic(func(tx *stm.Tx) error {
					busy.Set(tx, busy.Get(tx)+1)
					return nil
				})
			}
		}()
		before := rt.Snapshot()
		time.Sleep(window)
		delta := rt.Snapshot().Starts - before.Starts
		close(stop)
		writerWG.Wait()
		// Writer commits are part of delta in both modes; subtract them
		// out by releasing the gate only after measuring reader churn.
		_ = rt.Atomic(func(tx *stm.Tx) error {
			gate.Set(tx, 1)
			return nil
		})
		wg.Wait()
		return delta
	}

	// Both deltas include the throttled writer's own starts (~200 over
	// the window): watchDelta ≈ writer alone (parked readers contribute
	// ~0), spinDelta ≈ writer + 16 spinning readers re-executing flat
	// out. The ratio bound stays orders of magnitude clear of noise.
	watchDelta := churn(false)
	spinDelta := churn(true)
	t.Logf("starts over %v window: watch=%d spin=%d (ratio %.1fx)",
		window, watchDelta, spinDelta, float64(spinDelta)/float64(watchDelta))
	if spinDelta < 10*watchDelta {
		t.Fatalf("spin-mode churn %d is not ≥10x watch-mode churn %d — parked readers are burning CPU",
			spinDelta, watchDelta)
	}
}

// TestSpinRetryOptOut pins that the explicit opt-out still blocks
// correctly (by re-execution) and never parks.
func TestSpinRetryOptOut(t *testing.T) {
	rt := stm.New(stm.Config{SpinRetry: true})
	v := stm.NewVar(0)
	got := make(chan int, 1)
	go func() {
		var x int
		_ = rt.Atomic(func(tx *stm.Tx) error {
			x = v.Get(tx)
			if x == 0 {
				tx.Retry()
			}
			return nil
		})
		got <- x
	}()
	time.Sleep(10 * time.Millisecond)
	if n := rt.RetryParked(); n != 0 {
		t.Fatalf("SpinRetry runtime parked %d transactions", n)
	}
	_ = rt.Atomic(func(tx *stm.Tx) error {
		v.Set(tx, 9)
		return nil
	})
	select {
	case x := <-got:
		if x != 9 {
			t.Fatalf("spinning reader observed %d, want 9", x)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("spinning reader never observed the write")
	}
	if s := rt.Snapshot(); s.RetryParks != 0 {
		t.Fatalf("SpinRetry recorded %d parks, want 0", s.RetryParks)
	}
}
