// Package chunker implements content-defined chunking with a rolling
// hash, the fragmentation stage of the PARSEC dedup kernel.
//
// Dedup's pipeline first splits the input stream at content-defined
// boundaries (so that identical content produces identical chunks
// regardless of its position in the stream), then deduplicates chunks by
// their digest. This package provides the boundary detection: a
// buzhash-style rolling hash over a sliding window, declaring a boundary
// whenever the low bits of the hash match a mask, with minimum and
// maximum chunk-size clamps.
package chunker

import (
	"errors"
	"io"
)

// Config parameterizes a Chunker.
type Config struct {
	// Window is the rolling-hash window in bytes. 0 means 48.
	Window int
	// AvgBits sets the expected chunk size to 2^AvgBits bytes (boundary
	// probability 2^-AvgBits per position). 0 means 13 (8 KiB average).
	AvgBits uint
	// Min and Max clamp chunk sizes. 0 means Avg/4 and Avg*4.
	Min, Max int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 48
	}
	if c.AvgBits == 0 {
		c.AvgBits = 13
	}
	avg := 1 << c.AvgBits
	if c.Min <= 0 {
		c.Min = avg / 4
	}
	if c.Max <= 0 {
		c.Max = avg * 4
	}
	if c.Min < c.Window {
		c.Min = c.Window
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	return c
}

// table is the byte-to-hash mapping for the rolling hash, generated
// deterministically (splitmix64) so chunk boundaries are stable across
// runs and platforms.
var table = func() [256]uint64 {
	var t [256]uint64
	x := uint64(0x2545F4914F6CDD1D)
	for i := range t {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		t[i] = z ^ (z >> 31)
	}
	return t
}()

func rol(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Chunk is one content-defined chunk of the input.
type Chunk struct {
	Offset int64  // position of the chunk in the stream
	Data   []byte // chunk contents (aliases the input for Split)
}

// Chunker finds chunk boundaries in byte streams.
type Chunker struct {
	cfg  Config
	mask uint64
}

// New creates a Chunker.
func New(cfg Config) *Chunker {
	cfg = cfg.withDefaults()
	return &Chunker{cfg: cfg, mask: (1 << cfg.AvgBits) - 1}
}

// Config returns the effective (defaulted) configuration.
func (c *Chunker) Config() Config { return c.cfg }

// Split partitions data into content-defined chunks. The returned chunks
// alias data (no copying); their concatenation is exactly data.
func (c *Chunker) Split(data []byte) []Chunk {
	var chunks []Chunk
	var start int
	for start < len(data) {
		n := c.nextBoundary(data[start:])
		chunks = append(chunks, Chunk{Offset: int64(start), Data: data[start : start+n]})
		start += n
	}
	return chunks
}

// nextBoundary returns the length of the next chunk starting at data[0].
func (c *Chunker) nextBoundary(data []byte) int {
	if len(data) <= c.cfg.Min {
		return len(data)
	}
	w := c.cfg.Window
	var h uint64
	// Prime the window ending at position Min-1.
	primeFrom := c.cfg.Min - w
	for i := primeFrom; i < c.cfg.Min; i++ {
		h = rol(h, 1) ^ table[data[i]]
	}
	limit := c.cfg.Max
	if limit > len(data) {
		limit = len(data)
	}
	for i := c.cfg.Min; i < limit; i++ {
		// Slide: remove data[i-w], add data[i].
		h = rol(h, 1) ^ rol(table[data[i-w]], uint(w)) ^ table[data[i]]
		if h&c.mask == c.mask {
			return i + 1
		}
	}
	return limit
}

// Reader chunks an io.Reader incrementally, for streaming pipelines.
type Reader struct {
	c      *Chunker
	r      io.Reader
	buf    []byte
	off    int64
	err    error
	filled int
}

// NewReader wraps r for streaming chunking with the given config.
func NewReader(r io.Reader, cfg Config) *Reader {
	c := New(cfg)
	return &Reader{
		c:   c,
		r:   r,
		buf: make([]byte, 0, 2*c.cfg.Max),
	}
}

// Next returns the next chunk, or io.EOF when the stream is exhausted.
// The returned chunk's Data is owned by the caller (copied).
func (cr *Reader) Next() (Chunk, error) {
	// Fill the buffer until we hold Max bytes or hit EOF.
	for cr.err == nil && len(cr.buf) < cr.c.cfg.Max {
		cr.buf = cr.buf[:cap(cr.buf)]
		n, err := cr.r.Read(cr.buf[cr.filled:])
		cr.filled += n
		cr.buf = cr.buf[:cr.filled]
		if err != nil {
			cr.err = err
		}
	}
	if len(cr.buf) == 0 {
		if cr.err != nil && !errors.Is(cr.err, io.EOF) {
			return Chunk{}, cr.err
		}
		return Chunk{}, io.EOF
	}
	n := cr.c.nextBoundary(cr.buf)
	if n == len(cr.buf) && cr.err == nil {
		// Shouldn't happen (we fill to Max), but guard anyway.
		n = len(cr.buf)
	}
	out := make([]byte, n)
	copy(out, cr.buf[:n])
	ch := Chunk{Offset: cr.off, Data: out}
	cr.off += int64(n)
	copy(cr.buf, cr.buf[n:])
	cr.filled -= n
	cr.buf = cr.buf[:cr.filled]
	return ch, nil
}
