package chunker

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

// pseudorandom data generator (deterministic).
func randBytes(n int, seed uint64) []byte {
	out := make([]byte, n)
	x := seed
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}

func TestSplitConcatenation(t *testing.T) {
	c := New(Config{AvgBits: 10})
	data := randBytes(100_000, 1)
	chunks := c.Split(data)
	if len(chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(chunks))
	}
	var rebuilt []byte
	var off int64
	for _, ch := range chunks {
		if ch.Offset != off {
			t.Fatalf("offset = %d, want %d", ch.Offset, off)
		}
		rebuilt = append(rebuilt, ch.Data...)
		off += int64(len(ch.Data))
	}
	if !bytes.Equal(rebuilt, data) {
		t.Error("concatenation != input")
	}
}

func TestSizeBounds(t *testing.T) {
	cfg := Config{AvgBits: 10, Min: 256, Max: 4096}
	c := New(cfg)
	data := randBytes(200_000, 7)
	chunks := c.Split(data)
	for i, ch := range chunks {
		if len(ch.Data) > cfg.Max {
			t.Errorf("chunk %d len %d > max %d", i, len(ch.Data), cfg.Max)
		}
		if i < len(chunks)-1 && len(ch.Data) < cfg.Min {
			t.Errorf("non-final chunk %d len %d < min %d", i, len(ch.Data), cfg.Min)
		}
	}
}

func TestAverageSizeRoughlyMatches(t *testing.T) {
	c := New(Config{AvgBits: 10}) // expect ~1 KiB
	data := randBytes(1_000_000, 3)
	chunks := c.Split(data)
	avg := len(data) / len(chunks)
	if avg < 512 || avg > 2300 {
		t.Errorf("average chunk = %d, want roughly 1024 (min/max clamps shift it)", avg)
	}
}

// TestContentDefined: the defining property — a local edit early in the
// stream must not change chunk boundaries far after it. We prepend bytes
// and check the chunk digests resynchronize.
func TestContentDefined(t *testing.T) {
	c := New(Config{AvgBits: 10})
	base := randBytes(300_000, 42)
	shifted := append(randBytes(37, 99), base...)

	set := map[string]bool{}
	for _, ch := range c.Split(base) {
		set[string(ch.Data)] = true
	}
	shared := 0
	chunks := c.Split(shifted)
	for _, ch := range chunks {
		if set[string(ch.Data)] {
			shared++
		}
	}
	if shared < len(chunks)/2 {
		t.Errorf("only %d/%d chunks shared after a 37-byte prepend; boundaries are not content-defined", shared, len(chunks))
	}
}

// TestIdenticalRegionsProduceIdenticalChunks: duplicated content yields
// duplicate chunks (what makes dedup work).
func TestIdenticalRegionsProduceIdenticalChunks(t *testing.T) {
	c := New(Config{AvgBits: 10})
	block := randBytes(50_000, 5)
	data := append(append(append([]byte{}, block...), block...), block...)
	chunks := c.Split(data)
	counts := map[string]int{}
	for _, ch := range chunks {
		counts[string(ch.Data)]++
	}
	dups := 0
	for _, n := range counts {
		if n > 1 {
			dups += n - 1
		}
	}
	if dups == 0 {
		t.Error("no duplicate chunks for 3x-repeated content")
	}
}

func TestDefaults(t *testing.T) {
	c := New(Config{})
	cfg := c.Config()
	if cfg.Window != 48 || cfg.AvgBits != 13 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.Min != (1<<13)/4 || cfg.Max != (1<<13)*4 {
		t.Errorf("min/max defaults = %d/%d", cfg.Min, cfg.Max)
	}
	// Degenerate configs are repaired.
	c2 := New(Config{Window: 64, AvgBits: 4, Min: 1, Max: 2})
	cfg2 := c2.Config()
	if cfg2.Min < cfg2.Window || cfg2.Max < cfg2.Min {
		t.Errorf("repair failed: %+v", cfg2)
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	c := New(Config{})
	if got := c.Split(nil); got != nil {
		t.Errorf("Split(nil) = %v", got)
	}
	small := []byte("tiny")
	chunks := c.Split(small)
	if len(chunks) != 1 || !bytes.Equal(chunks[0].Data, small) {
		t.Errorf("tiny input chunks = %v", chunks)
	}
}

func TestReaderMatchesSplit(t *testing.T) {
	data := randBytes(150_000, 11)
	cfg := Config{AvgBits: 10}
	want := New(cfg).Split(data)
	r := NewReader(bytes.NewReader(data), cfg)
	var got []Chunk
	for {
		ch, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ch)
	}
	if len(got) != len(want) {
		t.Fatalf("reader chunks = %d, split chunks = %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Offset != want[i].Offset || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("chunk %d differs", i)
		}
	}
}

func TestReaderSmallReads(t *testing.T) {
	data := randBytes(50_000, 13)
	r := NewReader(&smallReader{data: data, max: 7}, Config{AvgBits: 9})
	var rebuilt []byte
	for {
		ch, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rebuilt = append(rebuilt, ch.Data...)
	}
	if !bytes.Equal(rebuilt, data) {
		t.Error("streaming with tiny reads lost data")
	}
}

// smallReader reads at most max bytes per call, to exercise the streaming
// reader's refill logic.
type smallReader struct {
	data []byte
	max  int
	pos  int
}

func (r *smallReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := r.max
	if n > len(p) {
		n = len(p)
	}
	if n > len(r.data)-r.pos {
		n = len(r.data) - r.pos
	}
	copy(p, r.data[r.pos:r.pos+n])
	r.pos += n
	return n, nil
}

// Property: Split always reconstructs the input for arbitrary data.
func TestSplitRoundTripProperty(t *testing.T) {
	c := New(Config{AvgBits: 8})
	f := func(data []byte) bool {
		chunks := c.Split(data)
		var rebuilt []byte
		for _, ch := range chunks {
			rebuilt = append(rebuilt, ch.Data...)
		}
		return bytes.Equal(rebuilt, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: chunking is deterministic.
func TestDeterminismProperty(t *testing.T) {
	c := New(Config{AvgBits: 9})
	f := func(seed uint32, size uint16) bool {
		data := randBytes(int(size)+1000, uint64(seed)+1)
		a := c.Split(data)
		b := c.Split(data)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Offset != b[i].Offset || len(a[i].Data) != len(b[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
