#!/bin/sh
# benchdiff.sh [baseline.json] [out.json]
#
# Re-runs the STM hot-path benchmark suite and prints a per-workload
# delta table against a saved baseline produced by `make bench` (or any
# `stmbench -json` run). The combined before/after trajectory is written
# to out.json (default: stm-benchdiff.json) so a regression can be
# committed alongside the change that introduced — or fixed — it.
#
# Exit status is stmbench's: non-zero only on harness failure, never on
# a slowdown. Timing thresholds are a human decision, not a CI gate.
set -eu

cd "$(dirname "$0")/.."

baseline="${1:-stm-bench.json}"
out="${2:-stm-benchdiff.json}"

if [ ! -f "$baseline" ]; then
    echo "benchdiff: baseline '$baseline' not found; run 'make bench' first" >&2
    exit 2
fi

go run ./cmd/stmbench -baseline "$baseline" -json "$out" -label benchdiff
echo "trajectory written to $out"
