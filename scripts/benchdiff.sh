#!/bin/sh
# benchdiff.sh [baseline.json] [out.json]
#
# Re-runs an STM benchmark suite and prints a per-workload delta table
# against a saved baseline produced by `make bench` / `make
# bench-scaling` (or any `stmbench -json` run). Scaling results are
# named "<workload>/<threads>", so multi-thread series diff point for
# point like any other workload. The combined before/after trajectory
# is written to out.json (default: stm-benchdiff.json) so a regression
# can be committed alongside the change that introduced — or fixed — it.
#
# SUITE=hot|scaling|all (default hot) selects which workloads re-run;
# it must match the suite the baseline was recorded with.
#
# Exit status is stmbench's: non-zero only on harness failure, never on
# a slowdown. Timing thresholds are a human decision, not a CI gate.
set -eu

cd "$(dirname "$0")/.."

baseline="${1:-stm-bench.json}"
out="${2:-stm-benchdiff.json}"
suite="${SUITE:-hot}"

if [ ! -f "$baseline" ]; then
    echo "benchdiff: baseline '$baseline' not found; run 'make bench' first" >&2
    exit 2
fi

go run ./cmd/stmbench -suite "$suite" -baseline "$baseline" -json "$out" -label benchdiff
echo "trajectory written to $out"
