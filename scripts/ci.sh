#!/bin/sh
# CI gate: vet, build, race-enabled tests, and a short adversarial
# torture run with full history checking. Run from the repo root:
#
#   ./scripts/ci.sh
#
# or via `make ci`. Fails on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

echo "==> stmtorture -check smoke (2s, fault injection, seed 1)"
go run ./cmd/stmtorture -duration 2s -threads 8 -check -inject -seed 1

echo "==> stmtorture -check smoke, HTM mode"
go run ./cmd/stmtorture -duration 2s -threads 8 -mode htm -check -inject -seed 1

# Retry-storm smoke: the watcher workload alone, with injection stalling
# inside both lost-wakeup windows (register→park and publish→wake) and
# the recorded history verified against the retry-wakeup rule. A lost
# wakeup deadlocks the producer/consumer handoff and fails the run.
echo "==> retry-storm smoke (watcher workload, injected stall windows)"
go run ./cmd/stmtorture -duration 2s -threads 8 -workload watcher -check -inject -seed 3

# Snapshot-scanner smoke: writers hammer a conserved keyspace while
# snapshot transactions sum it, under the race detector (the version
# chains are lock-free reader-side), with the recorded history verified
# against the snapshot-consistency axioms (pinned cut, truncation never
# ahead of a registered reader). A torn cut fails the conservation
# check; an unsound chain mutation trips the race detector.
echo "==> snapshot-scanner smoke (race detector + history check)"
go run -race ./cmd/stmtorture -duration 2s -threads 8 -workload scanner -check -seed 5

# The reactive kit (rate limiter, pub/sub) and the blocking queue ops it
# rides on are all about parking and waking under contention: run their
# tests under the race detector explicitly, uncached.
echo "==> reactive-kit tests (race detector, uncached)"
go test -race -count=1 ./internal/reactive ./internal/ds

echo "==> kv crash-recovery smoke (race detector, fixed seeds)"
go test -race -count=1 -run 'TestCrashRecovery' ./internal/kv

# The sharded store's lane routing, cross-shard commit, manifest pinning
# and crash atomicity are all lock-order-sensitive concurrency: gate them
# under the race detector explicitly, uncached.
echo "==> sharded-lane routing + cross-shard atomicity (race detector, uncached)"
go test -race -count=1 -run 'Sharded|CrossShard|CrossLane|Manifest|LaneRecord|Token|Legacy' ./internal/kv
go test -race -count=1 -run 'TestShardedKVHistoryDurability' ./internal/check

# The trace exporter and offline checkers both depend on the recorder's
# ordering contract (per-tx monotone spans, enqueue→start→end for every
# deferred op); assert it explicitly under the race detector.
echo "==> recorder ordering + trace export property tests (race detector)"
go test -race -count=1 -run 'TestRecorderEventOrdering|TestTraceWriterJSON' ./internal/history

echo "==> kvbench acceptance (group commit must beat sync fsyncs/commit)"
go run ./cmd/kvbench -threads 4,8 -ops 100 -latency pagecache -modes sync,group >/dev/null

# Benchmark harness smoke: the suite must run and emit well-formed JSON.
# Deliberately no timing assertions — CI machines are too noisy for
# thresholds; regressions are judged by humans via scripts/benchdiff.sh.
echo "==> stmbench harness smoke (quick run + JSON validation)"
tmpjson="$(mktemp)"
trap 'rm -f "$tmpjson"' EXIT
go run ./cmd/stmbench -quick -json "$tmpjson" >/dev/null
go run ./cmd/stmbench -validate "$tmpjson"

# Allocation gate: re-run the hot suite against the run above as its
# baseline; the read-only and small-write rows must not regress in
# allocs/op (absolute slack, see bench.AllocGate). Quick targets keep
# this cheap, and allocs/op — unlike ns/op — is stable on noisy CI.
echo "==> stmbench allocgate (hot-path allocs must not regress)"
go run ./cmd/stmbench -quick -baseline "$tmpjson" -allocgate >/dev/null

# Scaling-suite smoke at 2 threads: exercises the striped-size maps and
# the deferred chunked resize (resize-storm) end to end, and validates
# the emitted document. Again no timing assertions.
echo "==> stmbench scaling-suite smoke (quick, 2 threads)"
go run ./cmd/stmbench -suite scaling -quick -maxthreads 2 -json "$tmpjson" >/dev/null
go run ./cmd/stmbench -validate "$tmpjson"

# Reactive-suite smoke: blocked-reader wakeup ladder capped at 4 readers,
# watcher-vs-spin churn ablation, queue handoff. Validates the document
# (which now carries retry_parks/retry_wakes and wake_p99_ns columns).
echo "==> stmbench reactive-suite smoke (quick, 4 readers)"
go run ./cmd/stmbench -suite reactive -quick -maxreaders 4 -json "$tmpjson" >/dev/null
go run ./cmd/stmbench -validate "$tmpjson"

# Mixed-suite smoke: the writers-vs-scanner ladder (both scan variants)
# capped at 2 writers, with the emitted document validated. The suite
# self-checks every scan's cut (branch sum vs account sum), so a torn
# snapshot fails the run, not just the JSON shape.
echo "==> stmbench mixed-suite smoke (quick, 2 writers, both scan variants)"
go run ./cmd/stmbench -suite mixed -quick -maxwriters 2 -json "$tmpjson" >/dev/null
go run ./cmd/stmbench -validate "$tmpjson"

# Metrics-endpoint smoke: run kvbench with a live /metrics server and
# scrape it mid-run. Every key family must be exposed: commit-latency
# buckets, abort-reason counters, deferred-queue depth, and the WAL
# append→durable lag histogram.
echo "==> metrics endpoint smoke (kvbench -metrics + curl)"
tmpmetrics="$(mktemp)"
tmptrace="$(mktemp)"
trap 'rm -f "$tmpjson" "$tmpmetrics" "$tmptrace"' EXIT
go run ./cmd/kvbench -threads 2,4 -ops 800 -latency pagecache -modes group \
    -metrics 127.0.0.1:9190 >/dev/null 2>&1 &
kvpid=$!
scraped=""
for _ in $(seq 1 50); do
    if curl -sf http://127.0.0.1:9190/metrics >"$tmpmetrics" 2>/dev/null; then
        scraped=1
        break
    fi
    sleep 0.1
done
wait "$kvpid"
[ -n "$scraped" ] || { echo "metrics endpoint never came up"; exit 1; }
for series in \
    deferstm_tx_latency_seconds_bucket \
    'deferstm_aborts_total{reason="conflict"}' \
    deferstm_defer_queue_depth \
    deferstm_wal_fsyncs_total \
    'deferstm_wal_lane_records_total{lane="0"}' \
    deferstm_wal_append_durable_seconds; do
    grep -q "$series" "$tmpmetrics" || { echo "missing series: $series"; exit 1; }
done

# Same endpoint on stmtorture, scraping both the Prometheus text and the
# expvar JSON views mid-run.
echo "==> metrics endpoint smoke (stmtorture -metrics + curl /metrics + /debug/vars)"
go run ./cmd/stmtorture -duration 4s -threads 4 -workload kvstore \
    -metrics 127.0.0.1:9193 >/dev/null 2>&1 &
torturepid=$!
scraped=""
for _ in $(seq 1 50); do
    if curl -sf http://127.0.0.1:9193/metrics >"$tmpmetrics" 2>/dev/null; then
        scraped=1
        break
    fi
    sleep 0.1
done
if [ -n "$scraped" ]; then
    curl -sf http://127.0.0.1:9193/debug/vars | grep -q '"deferstm"' \
        || { echo "expvar view missing deferstm"; kill "$torturepid" 2>/dev/null; exit 1; }
fi
wait "$torturepid"
[ -n "$scraped" ] || { echo "stmtorture metrics endpoint never came up"; exit 1; }
for series in \
    deferstm_quiesce_wait_seconds \
    deferstm_retry_parks_total \
    deferstm_retry_waiters; do
    grep -q "$series" "$tmpmetrics" || { echo "missing series: $series"; exit 1; }
done

# Trace-export smoke: a short defer workload must produce a well-formed
# Chrome trace-event document while its history still checks clean.
echo "==> trace export smoke (stmtorture -trace)"
go run ./cmd/stmtorture -duration 300ms -threads 4 -workload defer -check \
    -trace "$tmptrace" >/dev/null
grep -q '"traceEvents"' "$tmptrace" || { echo "trace output malformed"; exit 1; }

# The networked front end rides the same group-commit machinery; its
# protocol codecs, pipelined reader/writer pairs, and shutdown paths are
# all concurrency, so gate them under the race detector explicitly.
echo "==> kvserver protocol + pipeline tests (race detector, uncached)"
go test -race -count=1 ./internal/server

# kvserver crash smoke: boot a real kvserver (OS-backed WAL, ephemeral
# port), drive a pipelined connection ladder through kvloadgen (which
# records the highest durably-acked LSN), kill -9 the server mid-promise,
# then recover the store and require check.RecoveredPrefix to pass:
# every LSN the server acked before dying must survive replay. The -check
# flag also asserts the wire-level group-commit win: a >= 8-connection
# group-mode rung with fsyncs/commit < 1.
echo "==> kvserver crash smoke (kvloadgen ladder + kill -9 + recovery verify)"
kvdir="$(mktemp -d)"
trap 'rm -f "$tmpjson" "$tmpmetrics" "$tmptrace"; rm -rf "$kvdir"' EXIT
go build -o "$kvdir/kvserver" ./cmd/kvserver
go build -o "$kvdir/kvloadgen" ./cmd/kvloadgen
"$kvdir/kvserver" -addr 127.0.0.1:0 -addrfile "$kvdir/addr.txt" \
    -dir "$kvdir/wal" -mode group 2>"$kvdir/server.log" &
kvsrvpid=$!
bound=""
for _ in $(seq 1 50); do
    if [ -s "$kvdir/addr.txt" ]; then
        bound="$(head -n1 "$kvdir/addr.txt")"
        break
    fi
    sleep 0.1
done
[ -n "$bound" ] || { echo "kvserver never published its address"; cat "$kvdir/server.log"; exit 1; }
"$kvdir/kvloadgen" -addr "$bound" -conns 1,4,8 -ops 400 -reads 20 \
    -ackfile "$kvdir/ack.txt" -json "$kvdir/load.json" -check >/dev/null
go run ./cmd/stmbench -validate "$kvdir/load.json"
kill -9 "$kvsrvpid" 2>/dev/null || true
wait "$kvsrvpid" 2>/dev/null || true
"$kvdir/kvserver" -dir "$kvdir/wal" -verify -ackfile "$kvdir/ack.txt"

# Same smoke, sharded: four parallel WAL lanes, lane-tagged ack tokens,
# kill -9, then a per-lane recovery verify. kvloadgen writes "lane lsn"
# lines; -verify (lane count adopted from the manifest) must prove every
# lane's acked watermark survived and no lane invented records.
echo "==> sharded kvserver crash smoke (-shards 4 + kill -9 + per-lane verify)"
"$kvdir/kvserver" -addr 127.0.0.1:0 -addrfile "$kvdir/addr4.txt" \
    -dir "$kvdir/wal4" -mode group -shards 4 2>"$kvdir/server4.log" &
kvsrvpid=$!
bound=""
for _ in $(seq 1 50); do
    if [ -s "$kvdir/addr4.txt" ]; then
        bound="$(head -n1 "$kvdir/addr4.txt")"
        break
    fi
    sleep 0.1
done
[ -n "$bound" ] || { echo "sharded kvserver never published its address"; cat "$kvdir/server4.log"; exit 1; }
"$kvdir/kvloadgen" -addr "$bound" -conns 1,4,8 -ops 400 -reads 20 \
    -ackfile "$kvdir/ack4.txt" -check >/dev/null
kill -9 "$kvsrvpid" 2>/dev/null || true
wait "$kvsrvpid" 2>/dev/null || true
awk 'NF == 2' "$kvdir/ack4.txt" | grep -q . \
    || { echo "sharded ackfile has no per-lane lines"; cat "$kvdir/ack4.txt"; exit 1; }
"$kvdir/kvserver" -dir "$kvdir/wal4" -verify -ackfile "$kvdir/ack4.txt" \
    | grep -q 'verify ok: 4 lanes' || { echo "per-lane verify failed"; exit 1; }

# The replication engine's cross-lane barrier, cursor bookkeeping and
# reconnect paths are all shared-state concurrency between the stream
# goroutine and readers: gate internal/repl under the race detector
# explicitly, uncached.
echo "==> replication engine + stream tests (race detector, uncached)"
go test -race -count=1 ./internal/repl

# In-process replication torture: primary + server + replica in one
# binary, writer threads with cross-lane batches, checkpoints rotating
# lanes under the stream, seeded Kick() partitions — then prefix
# coverage (check.AckedPrefixLanes), content equality and per-thread
# counter exactness, with the primary's history verified.
echo "==> stmtorture replica workload (partitions + checkpoints, -check)"
go run ./cmd/stmtorture -duration 2s -threads 8 -workload replica -check -seed 2

# Replica smoke: one primary on a fixed port (so restarts are
# re-dialable), two kvreplica processes tailing it, a kvloadgen ladder
# recording per-lane acked LSNs, kill -9 of the primary mid-stream,
# reads served by the replicas while the primary is down (binary
# protocol and the /kv/scan HTTP fallback), then a restart from the
# same WAL dir, more load, and a polled `kvreplica -verify` for both:
# every acked LSN applied, zero snapshot-path fallbacks, and a
# well-formed replication-lag bench document.
echo "==> replica smoke (primary + 2 replicas + kill -9 + reconnect + verify)"
go build -o "$kvdir/kvreplica" ./cmd/kvreplica
rbound="127.0.0.1:9196"
"$kvdir/kvserver" -addr "$rbound" -dir "$kvdir/walr" -mode group -shards 4 \
    2>"$kvdir/primary.log" &
kvsrvpid=$!
"$kvdir/kvreplica" -primary "$rbound" -addr 127.0.0.1:0 \
    -addrfile "$kvdir/r1addr.txt" -statusfile "$kvdir/r1status.json" \
    -metrics 127.0.0.1:9195 2>"$kvdir/r1.log" &
r1pid=$!
"$kvdir/kvreplica" -primary "$rbound" -addr 127.0.0.1:0 \
    -addrfile "$kvdir/r2addr.txt" -statusfile "$kvdir/r2status.json" \
    2>"$kvdir/r2.log" &
r2pid=$!
sleep 0.3
"$kvdir/kvloadgen" -addr "$rbound" -conns 1,4,8 -ops 400 -reads 20 \
    -ackfile "$kvdir/ackr.txt" >/dev/null
for f in r1addr.txt r2addr.txt; do
    ok=""
    for _ in $(seq 1 100); do
        [ -s "$kvdir/$f" ] && { ok=1; break; }
        sleep 0.1
    done
    [ -n "$ok" ] || { echo "replica never caught up ($f)"; cat "$kvdir/r1.log" "$kvdir/r2.log"; exit 1; }
done
kill -9 "$kvsrvpid" 2>/dev/null || true
wait "$kvsrvpid" 2>/dev/null || true
# Primary is dead; both replicas must keep serving their applied state.
"$kvdir/kvloadgen" -addr "$(head -n1 "$kvdir/r1addr.txt")" -conns 2 -ops 200 \
    -reads 100 >/dev/null
curl -sf "http://127.0.0.1:9195/kv/scan?limit=5" | grep -q '"count"' \
    || { echo "replica /kv/scan failed while primary down"; exit 1; }
# Restart from the same WAL dir on the same port: the replicas'
# reconnect loops re-handshake from their applied cursors.
"$kvdir/kvserver" -addr "$rbound" -dir "$kvdir/walr" -mode group -shards 4 \
    2>"$kvdir/primary2.log" &
kvsrvpid=$!
sleep 0.5
"$kvdir/kvloadgen" -addr "$rbound" -conns 4 -ops 400 -reads 20 \
    -ackfile "$kvdir/ackr2.txt" >/dev/null
cat "$kvdir/ackr.txt" "$kvdir/ackr2.txt" >"$kvdir/ackr_all.txt"
for sf in r1status.json r2status.json; do
    ok=""
    for _ in $(seq 1 100); do
        if "$kvdir/kvreplica" -verify -statusfile "$kvdir/$sf" \
            -ackfile "$kvdir/ackr_all.txt" >"$kvdir/verify_$sf.txt" 2>/dev/null; then
            ok=1
            break
        fi
        sleep 0.2
    done
    [ -n "$ok" ] || { echo "replica verify never passed ($sf)"; \
        "$kvdir/kvreplica" -verify -statusfile "$kvdir/$sf" -ackfile "$kvdir/ackr_all.txt"; \
        cat "$kvdir/r1.log" "$kvdir/r2.log"; exit 1; }
    grep -q 'replica verify ok' "$kvdir/verify_$sf.txt" \
        || { echo "verify output malformed ($sf)"; exit 1; }
done
# Lag percentiles must come out as a well-formed bench document.
"$kvdir/kvreplica" -verify -statusfile "$kvdir/r1status.json" \
    -json "$kvdir/replica_lag.json" >/dev/null
go run ./cmd/stmbench -validate "$kvdir/replica_lag.json"
kill "$r1pid" "$r2pid" 2>/dev/null || true
wait "$r1pid" "$r2pid" 2>/dev/null || true
kill -9 "$kvsrvpid" 2>/dev/null || true
wait "$kvsrvpid" 2>/dev/null || true

echo "CI green"
