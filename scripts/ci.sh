#!/bin/sh
# CI gate: vet, build, race-enabled tests, and a short adversarial
# torture run with full history checking. Run from the repo root:
#
#   ./scripts/ci.sh
#
# or via `make ci`. Fails on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

echo "==> stmtorture -check smoke (2s, fault injection, seed 1)"
go run ./cmd/stmtorture -duration 2s -threads 8 -check -inject -seed 1

echo "==> stmtorture -check smoke, HTM mode"
go run ./cmd/stmtorture -duration 2s -threads 8 -mode htm -check -inject -seed 1

echo "CI green"
