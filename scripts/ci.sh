#!/bin/sh
# CI gate: vet, build, race-enabled tests, and a short adversarial
# torture run with full history checking. Run from the repo root:
#
#   ./scripts/ci.sh
#
# or via `make ci`. Fails on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

echo "==> stmtorture -check smoke (2s, fault injection, seed 1)"
go run ./cmd/stmtorture -duration 2s -threads 8 -check -inject -seed 1

echo "==> stmtorture -check smoke, HTM mode"
go run ./cmd/stmtorture -duration 2s -threads 8 -mode htm -check -inject -seed 1

echo "==> kv crash-recovery smoke (race detector, fixed seeds)"
go test -race -count=1 -run 'TestCrashRecovery' ./internal/kv

echo "==> kvbench acceptance (group commit must beat sync fsyncs/commit)"
go run ./cmd/kvbench -threads 4,8 -ops 100 -latency pagecache -modes sync,group >/dev/null

# Benchmark harness smoke: the suite must run and emit well-formed JSON.
# Deliberately no timing assertions — CI machines are too noisy for
# thresholds; regressions are judged by humans via scripts/benchdiff.sh.
echo "==> stmbench harness smoke (quick run + JSON validation)"
tmpjson="$(mktemp)"
trap 'rm -f "$tmpjson"' EXIT
go run ./cmd/stmbench -quick -json "$tmpjson" >/dev/null
go run ./cmd/stmbench -validate "$tmpjson"

# Scaling-suite smoke at 2 threads: exercises the striped-size maps and
# the deferred chunked resize (resize-storm) end to end, and validates
# the emitted document. Again no timing assertions.
echo "==> stmbench scaling-suite smoke (quick, 2 threads)"
go run ./cmd/stmbench -suite scaling -quick -maxthreads 2 -json "$tmpjson" >/dev/null
go run ./cmd/stmbench -validate "$tmpjson"

echo "CI green"
